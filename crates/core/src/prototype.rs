//! Prototypes: declarations of distributed functionalities (§2.1, §2.3.1).
//!
//! A prototype `ψ ∈ P` is declared by two disjoint *plain* relation schemas
//! — `Input_ψ` and `Output_ψ` (the latter non-empty) — and an active/passive
//! tag. Services *implement* prototypes; the algebra only ever manipulates
//! prototypes, never concrete methods (§2.1: "methods provided by services
//! may remain implicit and can be safely hidden").

use std::fmt;
use std::sync::Arc;

use crate::attr::AttrName;
use crate::error::SchemaError;
use crate::value::DataType;

/// A *plain* relation schema: an ordered list of typed attributes with
/// injective names (§2.3.1 preliminaries). Used for prototype input/output
/// schemas; extended relation schemas live in [`crate::schema`].
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RelationSchema {
    attrs: Arc<[(AttrName, DataType)]>,
}

impl RelationSchema {
    /// Build a schema, checking name injectivity.
    pub fn new(attrs: impl IntoIterator<Item = (AttrName, DataType)>) -> Result<Self, SchemaError> {
        let attrs: Vec<_> = attrs.into_iter().collect();
        for (i, (a, _)) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|(b, _)| b == a) {
                return Err(SchemaError::DuplicateAttribute(a.clone()));
            }
        }
        Ok(RelationSchema {
            attrs: attrs.into(),
        })
    }

    /// The empty schema (`D^0`), legal for prototype inputs such as
    /// `getTemperature()`.
    pub fn empty() -> Self {
        RelationSchema {
            attrs: Arc::from(Vec::new()),
        }
    }

    /// Number of attributes (`type(R)`).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// True iff the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attributes in declaration order.
    pub fn attrs(&self) -> impl Iterator<Item = &(AttrName, DataType)> {
        self.attrs.iter()
    }

    /// Attribute names in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &AttrName> {
        self.attrs.iter().map(|(a, _)| a)
    }

    /// Position of `name`, if present (0-based).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|(a, _)| a.as_str() == name)
    }

    /// Whether `name` is an attribute of this schema.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Type of attribute `name`.
    pub fn type_of(&self, name: &str) -> Option<DataType> {
        self.attrs
            .iter()
            .find(|(a, _)| a.as_str() == name)
            .map(|(_, t)| *t)
    }

    /// Whether the attribute *sets* of the two schemas intersect.
    pub fn intersects(&self, other: &RelationSchema) -> bool {
        self.names().any(|a| other.contains(a.as_str()))
    }
}

impl fmt::Debug for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (a, t)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a} {t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A prototype `ψ ∈ P` (§2.3.1).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Prototype {
    name: String,
    input: RelationSchema,
    output: RelationSchema,
    active: bool,
}

impl Prototype {
    /// Declare a prototype, enforcing the paper's constraints:
    /// `schema(Output_ψ) ≠ ∅` and `schema(Input_ψ) ∩ schema(Output_ψ) = ∅`.
    pub fn new(
        name: impl Into<String>,
        input: RelationSchema,
        output: RelationSchema,
        active: bool,
    ) -> Result<Arc<Self>, SchemaError> {
        let name = name.into();
        if output.is_empty() {
            return Err(SchemaError::EmptyPrototypeOutput { prototype: name });
        }
        if let Some(a) = input.names().find(|a| output.contains(a.as_str())) {
            return Err(SchemaError::PrototypeInputOutputOverlap {
                prototype: name,
                attr: a.clone(),
            });
        }
        Ok(Arc::new(Prototype {
            name,
            input,
            output,
            active,
        }))
    }

    /// Convenience builder from `(name, type)` pairs.
    pub fn declare(
        name: &str,
        input: &[(&str, DataType)],
        output: &[(&str, DataType)],
        active: bool,
    ) -> Result<Arc<Self>, SchemaError> {
        let mk = |xs: &[(&str, DataType)]| {
            RelationSchema::new(xs.iter().map(|(a, t)| (AttrName::new(a), *t)))
        };
        Prototype::new(name, mk(input)?, mk(output)?, active)
    }

    /// Prototype name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `Input_ψ`.
    pub fn input(&self) -> &RelationSchema {
        &self.input
    }

    /// `Output_ψ`.
    pub fn output(&self) -> &RelationSchema {
        &self.output
    }

    /// `active(ψ)` — whether invocations have a non-negligible side effect
    /// on the physical environment (§2.1).
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Render as the paper's pseudo-DDL (Table 1).
    pub fn to_ddl(&self) -> String {
        let fmt_schema = |s: &RelationSchema| {
            s.attrs()
                .map(|(a, t)| format!("{a} {t}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "PROTOTYPE {}( {} ) : ( {} ){};",
            self.name,
            fmt_schema(&self.input),
            fmt_schema(&self.output),
            if self.active { " ACTIVE" } else { "" }
        )
    }
}

impl fmt::Debug for Prototype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{} : {}",
            self.name,
            self.input,
            if self.active { " [active]" } else { "" },
            self.output
        )
    }
}

impl fmt::Display for Prototype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The four prototypes of the paper's running example (Table 1), used
/// throughout unit tests, examples and benchmarks.
pub mod examples {
    use super::*;

    /// `PROTOTYPE sendMessage(address STRING, text STRING) : (sent BOOLEAN) ACTIVE;`
    pub fn send_message() -> Arc<Prototype> {
        Prototype::declare(
            "sendMessage",
            &[("address", DataType::Str), ("text", DataType::Str)],
            &[("sent", DataType::Bool)],
            true,
        )
        .expect("valid prototype")
    }

    /// `PROTOTYPE checkPhoto(area STRING) : (quality INTEGER, delay REAL);`
    pub fn check_photo() -> Arc<Prototype> {
        Prototype::declare(
            "checkPhoto",
            &[("area", DataType::Str)],
            &[("quality", DataType::Int), ("delay", DataType::Real)],
            false,
        )
        .expect("valid prototype")
    }

    /// `PROTOTYPE takePhoto(area STRING, quality INTEGER) : (photo BLOB);`
    pub fn take_photo() -> Arc<Prototype> {
        Prototype::declare(
            "takePhoto",
            &[("area", DataType::Str), ("quality", DataType::Int)],
            &[("photo", DataType::Blob)],
            false,
        )
        .expect("valid prototype")
    }

    /// `PROTOTYPE getTemperature() : (temperature REAL);`
    pub fn get_temperature() -> Arc<Prototype> {
        Prototype::declare(
            "getTemperature",
            &[],
            &[("temperature", DataType::Real)],
            false,
        )
        .expect("valid prototype")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_schema_rejects_duplicates() {
        let err = RelationSchema::new(vec![
            (AttrName::new("a"), DataType::Int),
            (AttrName::new("a"), DataType::Str),
        ])
        .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateAttribute(AttrName::new("a")));
    }

    #[test]
    fn relation_schema_lookup() {
        let s = RelationSchema::new(vec![
            (AttrName::new("x"), DataType::Int),
            (AttrName::new("y"), DataType::Real),
        ])
        .unwrap();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.index_of("y"), Some(1));
        assert_eq!(s.type_of("x"), Some(DataType::Int));
        assert!(!s.contains("z"));
    }

    #[test]
    fn prototype_requires_nonempty_output() {
        let err = Prototype::declare("nop", &[("a", DataType::Int)], &[], false).unwrap_err();
        assert!(matches!(err, SchemaError::EmptyPrototypeOutput { .. }));
    }

    #[test]
    fn prototype_rejects_input_output_overlap() {
        let err = Prototype::declare(
            "echo",
            &[("x", DataType::Int)],
            &[("x", DataType::Int)],
            false,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SchemaError::PrototypeInputOutputOverlap { .. }
        ));
    }

    #[test]
    fn empty_input_is_allowed() {
        let p = examples::get_temperature();
        assert!(p.input().is_empty());
        assert_eq!(p.output().arity(), 1);
        assert!(!p.is_active());
    }

    #[test]
    fn ddl_round_trip_text_matches_table_1() {
        assert_eq!(
            examples::send_message().to_ddl(),
            "PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;"
        );
        assert_eq!(
            examples::get_temperature().to_ddl(),
            "PROTOTYPE getTemperature(  ) : ( temperature REAL );"
        );
    }

    #[test]
    fn schema_intersection() {
        let a = RelationSchema::new(vec![(AttrName::new("x"), DataType::Int)]).unwrap();
        let b = RelationSchema::new(vec![(AttrName::new("x"), DataType::Int)]).unwrap();
        let c = RelationSchema::new(vec![(AttrName::new("y"), DataType::Int)]).unwrap();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }
}
