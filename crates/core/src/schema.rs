//! Extended relation schemas (Definition 2) and the δ projection mapping
//! (Definition 4).
//!
//! An extended relation schema partitions its attributes into a *real*
//! schema and a *virtual* schema and carries a finite set of binding
//! patterns. Tuples over the schema store coordinates for real attributes
//! only; `δ_R(i)` maps the i-th attribute of the full schema to its
//! coordinate among the real attributes.
//!
//! Standard relation schemas are the special case with no virtual
//! attributes and no binding patterns (§2.3.2).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::attr::AttrName;
use crate::binding::BindingPattern;
use crate::error::SchemaError;
use crate::tuple::Tuple;
use crate::value::DataType;

/// Real/virtual status of an attribute (the partition of Definition 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Member of `realSchema(R)`: has a coordinate in every tuple.
    Real,
    /// Member of `virtualSchema(R)`: declared at schema level only.
    Virtual,
}

/// One attribute of an extended relation schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name (`attr_R(i)`).
    pub name: AttrName,
    /// Declared data type.
    pub ty: DataType,
    /// Real/virtual status.
    pub kind: AttrKind,
}

impl Attribute {
    /// A real attribute.
    pub fn real(name: impl Into<AttrName>, ty: DataType) -> Self {
        Attribute {
            name: name.into(),
            ty,
            kind: AttrKind::Real,
        }
    }

    /// A virtual attribute.
    pub fn virt(name: impl Into<AttrName>, ty: DataType) -> Self {
        Attribute {
            name: name.into(),
            ty,
            kind: AttrKind::Virtual,
        }
    }

    /// Whether this attribute is real.
    pub fn is_real(&self) -> bool {
        self.kind == AttrKind::Real
    }
}

/// Shared handle to an extended relation schema.
pub type SchemaRef = Arc<XSchema>;

/// An extended relation schema (Definition 2).
///
/// Construct via [`XSchema::builder`] or [`XSchema::from_attrs`]; both
/// enforce attribute-name injectivity and binding-pattern validity.
#[derive(Clone, PartialEq, Eq)]
pub struct XSchema {
    attrs: Vec<Attribute>,
    bps: Vec<BindingPattern>,
    /// `delta[i]` = coordinate of attribute `i` among real attributes, i.e.
    /// the paper's `δ_R(i+1) - 1`, or `None` for virtual attributes.
    delta: Vec<Option<usize>>,
    real_count: usize,
}

impl XSchema {
    /// Start building a schema.
    pub fn builder() -> XSchemaBuilder {
        XSchemaBuilder::default()
    }

    /// Build directly from attribute and binding-pattern lists, validating
    /// all Definition 2 constraints.
    pub fn from_attrs(
        attrs: Vec<Attribute>,
        bps: Vec<BindingPattern>,
    ) -> Result<SchemaRef, SchemaError> {
        // attr_R must be injective.
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(SchemaError::DuplicateAttribute(a.name.clone()));
            }
        }
        let mut delta = Vec::with_capacity(attrs.len());
        let mut real_count = 0usize;
        for a in &attrs {
            if a.is_real() {
                delta.push(Some(real_count));
                real_count += 1;
            } else {
                delta.push(None);
            }
        }
        let schema = XSchema {
            attrs,
            bps: Vec::new(),
            delta,
            real_count,
        };
        // Validate binding patterns against the finished attribute layout.
        let mut validated = Vec::with_capacity(bps.len());
        for bp in bps {
            schema.check_binding_pattern(&bp)?;
            // Deduplicate (BP(R) is a set).
            if !validated.contains(&bp) {
                validated.push(bp);
            }
        }
        Ok(Arc::new(XSchema {
            bps: validated,
            ..schema
        }))
    }

    /// Validate one binding pattern against this schema's layout
    /// (Definition 2 restrictions plus type agreement).
    fn check_binding_pattern(&self, bp: &BindingPattern) -> Result<(), SchemaError> {
        let proto = bp.prototype();
        let pname = proto.name().to_string();
        // service_bp ∈ realSchema(R), with a service-capable type.
        match self.attr_by_name(bp.service_attr().as_str()) {
            Some(a) if a.is_real() && a.ty.can_reference_service() => {}
            _ => {
                return Err(SchemaError::ServiceAttrNotReal {
                    prototype: pname,
                    attr: bp.service_attr().clone(),
                })
            }
        }
        // schema(Input_ψ) ⊆ schema(R), types agree.
        for (name, ty) in proto.input().attrs() {
            match self.attr_by_name(name.as_str()) {
                None => {
                    return Err(SchemaError::InputAttrMissing {
                        prototype: pname,
                        attr: name.clone(),
                    })
                }
                Some(a) if a.ty != *ty => {
                    return Err(SchemaError::TypeMismatch {
                        attr: name.clone(),
                        expected: *ty,
                        found: a.ty,
                    })
                }
                Some(_) => {}
            }
        }
        // schema(Output_ψ) ⊆ virtualSchema(R), types agree.
        for (name, ty) in proto.output().attrs() {
            match self.attr_by_name(name.as_str()) {
                Some(a) if !a.is_real() => {
                    if a.ty != *ty {
                        return Err(SchemaError::TypeMismatch {
                            attr: name.clone(),
                            expected: *ty,
                            found: a.ty,
                        });
                    }
                }
                _ => {
                    return Err(SchemaError::OutputAttrNotVirtual {
                        prototype: pname,
                        attr: name.clone(),
                    })
                }
            }
        }
        Ok(())
    }

    /// `type(R)`: total number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Number of real attributes, i.e. the tuple arity (Definition 3).
    pub fn real_arity(&self) -> usize {
        self.real_count
    }

    /// Attributes in declaration order (`attr_R`).
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Attribute at 0-based position `i`.
    pub fn attr(&self, i: usize) -> Option<&Attribute> {
        self.attrs.get(i)
    }

    /// Look up an attribute by name.
    pub fn attr_by_name(&self, name: &str) -> Option<&Attribute> {
        self.attrs.iter().find(|a| a.name.as_str() == name)
    }

    /// 0-based position of `name` in the full schema.
    pub fn position_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name.as_str() == name)
    }

    /// `schema(R)` as an ordered name set.
    pub fn names(&self) -> impl Iterator<Item = &AttrName> {
        self.attrs.iter().map(|a| &a.name)
    }

    /// `realSchema(R)` in declaration order.
    pub fn real_names(&self) -> impl Iterator<Item = &AttrName> {
        self.attrs.iter().filter(|a| a.is_real()).map(|a| &a.name)
    }

    /// `virtualSchema(R)` in declaration order.
    pub fn virtual_names(&self) -> impl Iterator<Item = &AttrName> {
        self.attrs.iter().filter(|a| !a.is_real()).map(|a| &a.name)
    }

    /// `schema(R)` as a `BTreeSet` for set-algebraic checks.
    pub fn name_set(&self) -> BTreeSet<&str> {
        self.names().map(|a| a.as_str()).collect()
    }

    /// `realSchema(R)` as a set.
    pub fn real_name_set(&self) -> BTreeSet<&str> {
        self.real_names().map(|a| a.as_str()).collect()
    }

    /// `virtualSchema(R)` as a set.
    pub fn virtual_name_set(&self) -> BTreeSet<&str> {
        self.virtual_names().map(|a| a.as_str()).collect()
    }

    /// Whether `name` belongs to `schema(R)`.
    pub fn contains(&self, name: &str) -> bool {
        self.attr_by_name(name).is_some()
    }

    /// Whether `name` belongs to `realSchema(R)`.
    pub fn is_real(&self, name: &str) -> bool {
        self.attr_by_name(name).is_some_and(|a| a.is_real())
    }

    /// Whether `name` belongs to `virtualSchema(R)`.
    pub fn is_virtual(&self, name: &str) -> bool {
        self.attr_by_name(name).is_some_and(|a| !a.is_real())
    }

    /// Declared type of `name`.
    pub fn type_of(&self, name: &str) -> Option<DataType> {
        self.attr_by_name(name).map(|a| a.ty)
    }

    /// The paper's `δ_R`: coordinate (0-based) of the attribute at 0-based
    /// position `i` within tuples; `None` if the attribute is virtual.
    pub fn delta(&self, i: usize) -> Option<usize> {
        self.delta.get(i).copied().flatten()
    }

    /// Tuple coordinate of the real attribute `name` (Definition 4).
    pub fn coord_of(&self, name: &str) -> Option<usize> {
        let i = self.position_of(name)?;
        self.delta(i)
    }

    /// Tuple coordinates for a list of real attributes, for use with
    /// [`Tuple::project_positions`]. Returns `None` if any attribute is
    /// missing or virtual (tuples cannot be projected onto virtual
    /// attributes, Definition 4).
    pub fn coords_of<'a, I>(&self, names: I) -> Option<Vec<usize>>
    where
        I: IntoIterator<Item = &'a str>,
    {
        names.into_iter().map(|n| self.coord_of(n)).collect()
    }

    /// Project a tuple onto one real attribute (`t[A]`).
    pub fn project_tuple_attr(&self, t: &Tuple, name: &str) -> Option<crate::value::Value> {
        self.coord_of(name).and_then(|c| t.get(c).cloned())
    }

    /// `BP(R)`.
    pub fn binding_patterns(&self) -> &[BindingPattern] {
        &self.bps
    }

    /// Find a binding pattern by prototype name (first match).
    pub fn find_bp(&self, prototype: &str) -> Option<&BindingPattern> {
        self.bps
            .iter()
            .find(|bp| bp.prototype().name() == prototype)
    }

    /// Find a binding pattern by prototype name *and* service attribute.
    pub fn find_bp_exact(&self, prototype: &str, service_attr: &str) -> Option<&BindingPattern> {
        self.bps.iter().find(|bp| {
            bp.prototype().name() == prototype && bp.service_attr().as_str() == service_attr
        })
    }

    /// Check a tuple against this schema: right arity, each coordinate
    /// conforms to the declared type of the corresponding real attribute.
    /// Returns a human-readable description of the first violation.
    pub fn check_tuple(&self, t: &Tuple) -> Result<(), String> {
        if t.arity() != self.real_count {
            return Err(format!(
                "arity mismatch: tuple has {} coordinates, realSchema has {}",
                t.arity(),
                self.real_count
            ));
        }
        for a in self.attrs.iter().filter(|a| a.is_real()) {
            let c = self.coord_of(a.name.as_str()).expect("real attr has coord");
            let v = &t[c];
            if !v.conforms_to(a.ty) {
                return Err(format!(
                    "attribute `{}`: expected {}, got {} ({v})",
                    a.name,
                    a.ty,
                    v.data_type()
                ));
            }
        }
        Ok(())
    }

    /// Set-operator compatibility (§3.1.1): same attribute set with
    /// identical types and real/virtual status, and the same binding-pattern
    /// set. Attribute *order* may differ; use [`XSchema::reorder_map`] to
    /// permute tuples of `other` into this schema's coordinate order.
    pub fn compatible_with(&self, other: &XSchema) -> bool {
        if self.attrs.len() != other.attrs.len() || self.bps.len() != other.bps.len() {
            return false;
        }
        for a in &self.attrs {
            match other.attr_by_name(a.name.as_str()) {
                Some(b) if b.ty == a.ty && b.kind == a.kind => {}
                _ => return false,
            }
        }
        self.bps.iter().all(|bp| other.bps.contains(bp))
    }

    /// For `other` compatible with `self`: coordinates in `other`'s tuples,
    /// listed in `self`'s real-attribute order, so that
    /// `t.project_positions(&map)` re-expresses `other`'s tuples over `self`.
    pub fn reorder_map(&self, other: &XSchema) -> Option<Vec<usize>> {
        self.attrs
            .iter()
            .filter(|a| a.is_real())
            .map(|a| other.coord_of(a.name.as_str()))
            .collect()
    }

    /// Whether this is a *standard* relation schema (no virtual attributes,
    /// no binding patterns) — the degenerate case of §2.3.2.
    pub fn is_standard(&self) -> bool {
        self.real_count == self.attrs.len() && self.bps.is_empty()
    }

    /// Render as the paper's pseudo-DDL (Table 2), given a relation name.
    pub fn to_ddl(&self, name: &str) -> String {
        let mut out = format!("EXTENDED RELATION {name} (\n");
        for (i, a) in self.attrs.iter().enumerate() {
            let virt = if a.is_real() { "" } else { " VIRTUAL" };
            let comma = if i + 1 < self.attrs.len() { "," } else { "" };
            out.push_str(&format!("  {} {}{}{}\n", a.name, a.ty, virt, comma));
        }
        out.push(')');
        if !self.bps.is_empty() {
            out.push_str("\nUSING BINDING PATTERNS (\n");
            for (i, bp) in self.bps.iter().enumerate() {
                let comma = if i + 1 < self.bps.len() { "," } else { "" };
                out.push_str(&format!("  {}{}\n", bp.to_ddl(), comma));
            }
            out.push(')');
        }
        out.push(';');
        out
    }
}

impl fmt::Debug for XSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}{}", a.name, if a.is_real() { "" } else { "*" })?;
        }
        write!(f, "}}")?;
        if !self.bps.is_empty() {
            write!(f, " BP{:?}", self.bps)?;
        }
        Ok(())
    }
}

/// Fluent builder for [`XSchema`].
#[derive(Default)]
pub struct XSchemaBuilder {
    attrs: Vec<Attribute>,
    bps: Vec<BindingPattern>,
}

impl XSchemaBuilder {
    /// Append a real attribute.
    pub fn real(mut self, name: impl Into<AttrName>, ty: DataType) -> Self {
        self.attrs.push(Attribute::real(name, ty));
        self
    }

    /// Append a virtual attribute.
    pub fn virt(mut self, name: impl Into<AttrName>, ty: DataType) -> Self {
        self.attrs.push(Attribute::virt(name, ty));
        self
    }

    /// Attach a binding pattern.
    pub fn binding(mut self, bp: BindingPattern) -> Self {
        self.bps.push(bp);
        self
    }

    /// Attach a binding pattern built from a prototype + service attribute.
    pub fn bind(
        self,
        prototype: Arc<crate::prototype::Prototype>,
        service_attr: impl Into<AttrName>,
    ) -> Self {
        self.binding(BindingPattern::new(prototype, service_attr))
    }

    /// Validate and build.
    pub fn build(self) -> Result<SchemaRef, SchemaError> {
        XSchema::from_attrs(self.attrs, self.bps)
    }
}

/// The running example's schemas (Table 2), shared by tests/examples/benches.
pub mod examples {
    use super::*;
    use crate::prototype::examples as protos;

    /// `EXTENDED RELATION contacts` from Table 2.
    pub fn contacts_schema() -> SchemaRef {
        XSchema::builder()
            .real("name", DataType::Str)
            .real("address", DataType::Str)
            .virt("text", DataType::Str)
            .real("messenger", DataType::Service)
            .virt("sent", DataType::Bool)
            .bind(protos::send_message(), "messenger")
            .build()
            .expect("contacts schema is valid")
    }

    /// `EXTENDED RELATION cameras` from Table 2.
    pub fn cameras_schema() -> SchemaRef {
        XSchema::builder()
            .real("camera", DataType::Service)
            .real("area", DataType::Str)
            .virt("quality", DataType::Int)
            .virt("delay", DataType::Real)
            .virt("photo", DataType::Blob)
            .bind(protos::check_photo(), "camera")
            .bind(protos::take_photo(), "camera")
            .build()
            .expect("cameras schema is valid")
    }

    /// The temperature-sensor table from §1.2 (sensor, location,
    /// temperature*) with `getTemperature[sensor]`.
    pub fn sensors_schema() -> SchemaRef {
        XSchema::builder()
            .real("sensor", DataType::Service)
            .real("location", DataType::Str)
            .virt("temperature", DataType::Real)
            .bind(protos::get_temperature(), "sensor")
            .build()
            .expect("sensors schema is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::examples::*;
    use super::*;
    use crate::binding::BindingPattern;
    use crate::prototype::examples as protos;
    use crate::tuple;

    #[test]
    fn contacts_partition_matches_example_4() {
        let s = contacts_schema();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.real_arity(), 3);
        assert_eq!(
            s.real_name_set().into_iter().collect::<Vec<_>>(),
            vec!["address", "messenger", "name"]
        );
        assert_eq!(
            s.virtual_name_set().into_iter().collect::<Vec<_>>(),
            vec!["sent", "text"]
        );
        assert_eq!(s.binding_patterns().len(), 1);
        assert_eq!(s.binding_patterns()[0].key(), "sendMessage[messenger]");
    }

    #[test]
    fn delta_mapping_matches_example_4() {
        let s = contacts_schema();
        // attrs: name(1,real) address(2,real) text(3,virt) messenger(4,real) sent(5,virt)
        // δ(4) = 3 in 1-based paper terms → coord 2 in 0-based terms.
        assert_eq!(s.delta(0), Some(0));
        assert_eq!(s.delta(1), Some(1));
        assert_eq!(s.delta(2), None);
        assert_eq!(s.delta(3), Some(2));
        assert_eq!(s.delta(4), None);
        assert_eq!(s.coord_of("messenger"), Some(2));
        assert_eq!(s.coord_of("text"), None);
    }

    #[test]
    fn tuple_projection_matches_example_4() {
        let s = contacts_schema();
        let t = tuple!["Nicolas", "nicolas@elysee.fr", "email"];
        assert_eq!(
            s.project_tuple_attr(&t, "messenger"),
            Some(crate::value::Value::str("email"))
        );
        let coords = s.coords_of(["address", "messenger"]).unwrap();
        assert_eq!(
            t.project_positions(&coords),
            tuple!["nicolas@elysee.fr", "email"]
        );
    }

    #[test]
    fn bp_requires_real_service_attr() {
        // service attribute virtual → rejected
        let err = XSchema::builder()
            .virt("messenger", DataType::Service)
            .real("address", DataType::Str)
            .virt("text", DataType::Str)
            .virt("sent", DataType::Bool)
            .bind(protos::send_message(), "messenger")
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::ServiceAttrNotReal { .. }));
    }

    #[test]
    fn bp_requires_output_virtual() {
        // `sent` real → output not virtual → rejected
        let err = XSchema::builder()
            .real("messenger", DataType::Service)
            .real("address", DataType::Str)
            .virt("text", DataType::Str)
            .real("sent", DataType::Bool)
            .bind(protos::send_message(), "messenger")
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::OutputAttrNotVirtual { .. }));
    }

    #[test]
    fn bp_requires_input_present() {
        // missing `address` → input attr missing
        let err = XSchema::builder()
            .real("messenger", DataType::Service)
            .virt("text", DataType::Str)
            .virt("sent", DataType::Bool)
            .bind(protos::send_message(), "messenger")
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::InputAttrMissing { .. }));
    }

    #[test]
    fn bp_type_agreement_enforced() {
        // `text` declared INTEGER but prototype says STRING
        let err = XSchema::builder()
            .real("messenger", DataType::Service)
            .real("address", DataType::Str)
            .virt("text", DataType::Int)
            .virt("sent", DataType::Bool)
            .bind(protos::send_message(), "messenger")
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::TypeMismatch { .. }));
    }

    #[test]
    fn duplicate_attributes_rejected() {
        let err = XSchema::builder()
            .real("a", DataType::Int)
            .virt("a", DataType::Int)
            .build()
            .unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateAttribute(_)));
    }

    #[test]
    fn duplicate_bps_deduplicated() {
        let s = XSchema::builder()
            .real("sensor", DataType::Service)
            .virt("temperature", DataType::Real)
            .bind(protos::get_temperature(), "sensor")
            .bind(protos::get_temperature(), "sensor")
            .build()
            .unwrap();
        assert_eq!(s.binding_patterns().len(), 1);
    }

    #[test]
    fn check_tuple_arity_and_types() {
        let s = contacts_schema();
        assert!(s.check_tuple(&tuple!["Nicolas", "n@e.fr", "email"]).is_ok());
        assert!(s.check_tuple(&tuple!["Nicolas", "n@e.fr"]).is_err());
        assert!(s.check_tuple(&tuple!["Nicolas", "n@e.fr", true]).is_err());
    }

    #[test]
    fn compatibility_is_order_insensitive() {
        let a = XSchema::builder()
            .real("x", DataType::Int)
            .real("y", DataType::Str)
            .build()
            .unwrap();
        let b = XSchema::builder()
            .real("y", DataType::Str)
            .real("x", DataType::Int)
            .build()
            .unwrap();
        assert!(a.compatible_with(&b));
        let map = a.reorder_map(&b).unwrap();
        // b-tuples are (y, x); reordered into a's order (x, y) → [1, 0]
        assert_eq!(map, vec![1, 0]);
        let t = tuple!["hello", 7];
        assert_eq!(t.project_positions(&map), tuple![7, "hello"]);
    }

    #[test]
    fn incompatible_when_kinds_differ() {
        let a = XSchema::builder().real("x", DataType::Int).build().unwrap();
        let b = XSchema::builder().virt("x", DataType::Int).build().unwrap();
        assert!(!a.compatible_with(&b));
    }

    #[test]
    fn incompatible_when_bps_differ() {
        let a = sensors_schema();
        let b = XSchema::builder()
            .real("sensor", DataType::Service)
            .real("location", DataType::Str)
            .virt("temperature", DataType::Real)
            .build()
            .unwrap();
        assert!(!a.compatible_with(&b));
    }

    #[test]
    fn standard_schema_detection() {
        let std = XSchema::builder()
            .real("a", DataType::Int)
            .real("b", DataType::Str)
            .build()
            .unwrap();
        assert!(std.is_standard());
        assert!(!contacts_schema().is_standard());
    }

    #[test]
    fn ddl_rendering_matches_table_2_shape() {
        let ddl = contacts_schema().to_ddl("contacts");
        assert!(ddl.starts_with("EXTENDED RELATION contacts ("));
        assert!(ddl.contains("text STRING VIRTUAL,"));
        assert!(ddl.contains("messenger SERVICE,"));
        assert!(ddl.contains("USING BINDING PATTERNS ("));
        assert!(ddl.contains("sendMessage[messenger] ( address, text ) : ( sent )"));
        assert!(ddl.ends_with(");"));
    }

    #[test]
    fn cameras_schema_has_two_bps() {
        let s = cameras_schema();
        assert_eq!(s.binding_patterns().len(), 2);
        assert!(s.find_bp("checkPhoto").is_some());
        assert!(s.find_bp_exact("takePhoto", "camera").is_some());
        assert!(s.find_bp_exact("takePhoto", "webcam").is_none());
    }

    #[test]
    fn service_ref_via_string_attr_allowed() {
        // §2.2: service references are classical data values — a STRING
        // attribute may serve as service reference.
        let s = XSchema::builder()
            .real("sensor", DataType::Str)
            .virt("temperature", DataType::Real)
            .bind(protos::get_temperature(), "sensor")
            .build();
        assert!(s.is_ok());
    }

    #[test]
    fn service_ref_via_real_typed_attr_rejected() {
        let bp = BindingPattern::new(protos::get_temperature(), "sensor");
        let err = XSchema::from_attrs(
            vec![
                Attribute::real("sensor", DataType::Real),
                Attribute::virt("temperature", DataType::Real),
            ],
            vec![bp],
        )
        .unwrap_err();
        assert!(matches!(err, SchemaError::ServiceAttrNotReal { .. }));
    }
}
