//! Tuples over (extended) relation schemas.
//!
//! Per Definition 3, a tuple over an extended relation schema `R` is an
//! element of `D^|realSchema(R)|`: *only real attributes have coordinates*.
//! The mapping from attribute positions to coordinates (the paper's
//! `δ_R(i)`, Definition 4) lives on the schema; a `Tuple` is just the
//! ordered coordinate vector.
//!
//! Tuples are immutable and cheap to clone (`Arc<[Value]>`): operators share
//! tuples freely between input and output relations.

use std::fmt;
use std::ops::Index;
use std::sync::Arc;

use crate::value::Value;

/// An immutable tuple: an element of `D^n`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple(values.into().into())
    }

    /// The empty tuple (element of `D^0`), used for zero-input prototypes
    /// such as `getTemperature()`.
    pub fn empty() -> Self {
        Tuple(Arc::from(Vec::new()))
    }

    /// Number of coordinates.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// True iff the tuple has no coordinates.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Coordinate accessor (0-based).
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// Iterate coordinates in order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }

    /// All coordinates as a slice.
    pub fn as_slice(&self) -> &[Value] {
        &self.0
    }

    /// Project onto the given coordinate positions (generalized Definition 4;
    /// position resolution from attribute names is done by the schema).
    ///
    /// # Panics
    /// Panics if a position is out of bounds — positions must come from a
    /// schema that matches this tuple.
    pub fn project_positions(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenate two tuples (used by joins and invocation output
    /// extension).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v.into())
    }

    /// A new tuple with one extra trailing coordinate.
    pub fn extended_with(&self, value: Value) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + 1);
        v.extend_from_slice(&self.0);
        v.push(value);
        Tuple(v.into())
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v.into())
    }
}

/// Convenience macro: `tuple!["Nicolas", "nicolas@elysee.fr", "email"]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple!["Nicolas", "nicolas@elysee.fr", "email"];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::str("Nicolas"));
        assert_eq!(t.get(3), None);
        assert!(!t.is_empty());
        assert!(Tuple::empty().is_empty());
    }

    #[test]
    fn projection_matches_example_4() {
        // Example 4: t = (Nicolas, nicolas@elysee.fr, email);
        // t[{address, messenger}] = (nicolas@elysee.fr, email)
        // positions resolved by the schema would be [1, 2].
        let t = tuple!["Nicolas", "nicolas@elysee.fr", "email"];
        let p = t.project_positions(&[1, 2]);
        assert_eq!(p, tuple!["nicolas@elysee.fr", "email"]);
        // single-attribute: t[messenger] = (email)
        assert_eq!(t.project_positions(&[2]), tuple!["email"]);
    }

    #[test]
    fn concat_and_extend() {
        let a = tuple![1, 2];
        let b = tuple!["x"];
        assert_eq!(a.concat(&b), tuple![1, 2, "x"]);
        assert_eq!(a.extended_with(Value::Bool(true)), tuple![1, 2, true]);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(tuple![1, "a"], tuple![1, "a"]);
        assert_ne!(tuple![1, "a"], tuple!["a", 1]);
    }

    #[test]
    fn display_parenthesized() {
        assert_eq!(tuple!["a", 1, true].to_string(), "(a, 1, true)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = vec![Value::Int(1), Value::Int(2)].into_iter().collect();
        assert_eq!(t, tuple![1, 2]);
    }
}
