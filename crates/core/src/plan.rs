//! Logical query plans: compositions of Serena operators (Definition 7).
//!
//! "A query over a relational pervasive environment is a well-formed
//! expression composed of a finite number of Serena algebra operators whose
//! operands are X-Relations." [`Plan`] is that expression tree; it carries
//! no data and can be statically validated (schema inference per Table 3)
//! against any catalog of relation schemas, rewritten (Table 5), displayed
//! (`EXPLAIN`-style) and evaluated ([`crate::eval`]).

use std::fmt;

use crate::attr::AttrName;
use crate::error::PlanError;
use crate::formula::Formula;
use crate::ops::{self, AggSpec, AssignSource};
use crate::schema::SchemaRef;

/// A source of relation schemas for static plan validation. Implemented by
/// [`crate::env::Environment`] and by plain maps for schema-only contexts.
pub trait SchemaCatalog {
    /// Schema of the named X-Relation, if defined.
    fn schema_of(&self, name: &str) -> Option<SchemaRef>;
}

impl SchemaCatalog for crate::env::Environment {
    fn schema_of(&self, name: &str) -> Option<SchemaRef> {
        self.relation(name).map(|r| r.schema_ref())
    }
}

/// Map-like schema lookup. The std map types and [`MapCatalog`] implement
/// this one-method trait; a single blanket impl below derives
/// [`SchemaCatalog`] from it, so `name → schema` containers need no
/// per-type catalog boilerplate.
pub trait SchemaLookup {
    /// The schema stored under `name`, if any.
    fn lookup(&self, name: &str) -> Option<&SchemaRef>;
}

impl<T: SchemaLookup> SchemaCatalog for T {
    fn schema_of(&self, name: &str) -> Option<SchemaRef> {
        self.lookup(name).cloned()
    }
}

impl SchemaLookup for std::collections::HashMap<String, SchemaRef> {
    fn lookup(&self, name: &str) -> Option<&SchemaRef> {
        self.get(name)
    }
}

impl SchemaLookup for std::collections::BTreeMap<String, SchemaRef> {
    fn lookup(&self, name: &str) -> Option<&SchemaRef> {
        self.get(name)
    }
}

/// A Serena algebra expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// Leaf: a named X-Relation of the environment.
    Relation(String),
    /// `r1 ∪ r2`
    Union(Box<Plan>, Box<Plan>),
    /// `r1 ∩ r2`
    Intersect(Box<Plan>, Box<Plan>),
    /// `r1 − r2`
    Difference(Box<Plan>, Box<Plan>),
    /// `π_Y(r)`
    Project(Box<Plan>, Vec<AttrName>),
    /// `σ_F(r)`
    Select(Box<Plan>, Formula),
    /// `ρ_{A→B}(r)`
    Rename(Box<Plan>, AttrName, AttrName),
    /// `r1 ⋈ r2`
    Join(Box<Plan>, Box<Plan>),
    /// `α_{A:=src}(r)`
    Assign(Box<Plan>, AttrName, AssignSource),
    /// `β_{proto[service_attr]}(r)`
    Invoke(Box<Plan>, String, AttrName),
    /// `γ_{group; aggs}(r)` — extension, see [`crate::ops::aggregate`].
    Aggregate(Box<Plan>, Vec<AttrName>, Vec<AggSpec>),
}

impl Plan {
    /// Leaf plan scanning the named relation.
    pub fn relation(name: impl Into<String>) -> Plan {
        Plan::Relation(name.into())
    }

    /// `self ∪ other`.
    pub fn union(self, other: Plan) -> Plan {
        Plan::Union(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: Plan) -> Plan {
        Plan::Intersect(Box::new(self), Box::new(other))
    }

    /// `self − other`.
    pub fn difference(self, other: Plan) -> Plan {
        Plan::Difference(Box::new(self), Box::new(other))
    }

    /// `π_Y(self)`.
    pub fn project<I, A>(self, attrs: I) -> Plan
    where
        I: IntoIterator<Item = A>,
        A: Into<AttrName>,
    {
        Plan::Project(Box::new(self), attrs.into_iter().map(Into::into).collect())
    }

    /// `σ_F(self)`.
    pub fn select(self, formula: Formula) -> Plan {
        Plan::Select(Box::new(self), formula)
    }

    /// `ρ_{A→B}(self)`.
    pub fn rename(self, from: impl Into<AttrName>, to: impl Into<AttrName>) -> Plan {
        Plan::Rename(Box::new(self), from.into(), to.into())
    }

    /// `self ⋈ other`.
    pub fn join(self, other: Plan) -> Plan {
        Plan::Join(Box::new(self), Box::new(other))
    }

    /// `α_{A:=constant}(self)`.
    pub fn assign_const(
        self,
        attr: impl Into<AttrName>,
        value: impl Into<crate::value::Value>,
    ) -> Plan {
        Plan::Assign(Box::new(self), attr.into(), AssignSource::constant(value))
    }

    /// `α_{A:=B}(self)`.
    pub fn assign_attr(self, attr: impl Into<AttrName>, source: impl Into<AttrName>) -> Plan {
        Plan::Assign(
            Box::new(self),
            attr.into(),
            AssignSource::Attr(source.into()),
        )
    }

    /// `β_{prototype[service_attr]}(self)`.
    pub fn invoke(self, prototype: impl Into<String>, service_attr: impl Into<AttrName>) -> Plan {
        Plan::Invoke(Box::new(self), prototype.into(), service_attr.into())
    }

    /// `γ_{group; aggs}(self)` — extension operator.
    pub fn aggregate<I, A>(self, group: I, aggs: Vec<AggSpec>) -> Plan
    where
        I: IntoIterator<Item = A>,
        A: Into<AttrName>,
    {
        Plan::Aggregate(
            Box::new(self),
            group.into_iter().map(Into::into).collect(),
            aggs,
        )
    }

    /// Static validation & schema inference: derive the output schema per
    /// Table 3, failing exactly where an executor would.
    pub fn schema(&self, catalog: &dyn SchemaCatalog) -> Result<SchemaRef, PlanError> {
        match self {
            Plan::Relation(name) => catalog
                .schema_of(name)
                .ok_or_else(|| PlanError::UnknownRelation(name.clone())),
            Plan::Union(a, b) | Plan::Intersect(a, b) | Plan::Difference(a, b) => {
                let sa = a.schema(catalog)?;
                let sb = b.schema(catalog)?;
                ops::set_op_schema(&sa, &sb)
            }
            Plan::Project(p, attrs) => {
                let s = p.schema(catalog)?;
                ops::project_schema(&s, attrs)
            }
            Plan::Select(p, f) => {
                let s = p.schema(catalog)?;
                ops::select_schema(&s, f)
            }
            Plan::Rename(p, from, to) => {
                let s = p.schema(catalog)?;
                ops::rename_schema(&s, from, to)
            }
            Plan::Join(a, b) => {
                let sa = a.schema(catalog)?;
                let sb = b.schema(catalog)?;
                ops::join_schema(&sa, &sb)
            }
            Plan::Assign(p, attr, src) => {
                let s = p.schema(catalog)?;
                ops::assign_schema(&s, attr, src)
            }
            Plan::Invoke(p, proto, service_attr) => {
                let s = p.schema(catalog)?;
                ops::invoke_schema(&s, proto, service_attr.as_str()).map(|(s, _)| s)
            }
            Plan::Aggregate(p, group, aggs) => {
                let s = p.schema(catalog)?;
                ops::aggregate_schema(&s, group, aggs)
            }
        }
    }

    /// Child subplans (0, 1 or 2).
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Relation(_) => vec![],
            Plan::Union(a, b)
            | Plan::Intersect(a, b)
            | Plan::Difference(a, b)
            | Plan::Join(a, b) => vec![a, b],
            Plan::Project(p, _)
            | Plan::Select(p, _)
            | Plan::Rename(p, _, _)
            | Plan::Assign(p, _, _)
            | Plan::Invoke(p, _, _)
            | Plan::Aggregate(p, _, _) => vec![p],
        }
    }

    /// Rebuild this node with new children (same arity as
    /// [`Plan::children`]).
    ///
    /// # Panics
    /// Panics if `children` has the wrong arity.
    pub fn with_children(&self, mut children: Vec<Plan>) -> Plan {
        let mut next = || children.remove(0);
        match self {
            Plan::Relation(n) => Plan::Relation(n.clone()),
            Plan::Union(..) => {
                let a = next();
                Plan::Union(Box::new(a), Box::new(next()))
            }
            Plan::Intersect(..) => {
                let a = next();
                Plan::Intersect(Box::new(a), Box::new(next()))
            }
            Plan::Difference(..) => {
                let a = next();
                Plan::Difference(Box::new(a), Box::new(next()))
            }
            Plan::Join(..) => {
                let a = next();
                Plan::Join(Box::new(a), Box::new(next()))
            }
            Plan::Project(_, attrs) => Plan::Project(Box::new(next()), attrs.clone()),
            Plan::Select(_, f) => Plan::Select(Box::new(next()), f.clone()),
            Plan::Rename(_, a, b) => Plan::Rename(Box::new(next()), a.clone(), b.clone()),
            Plan::Assign(_, a, s) => Plan::Assign(Box::new(next()), a.clone(), s.clone()),
            Plan::Invoke(_, p, s) => Plan::Invoke(Box::new(next()), p.clone(), s.clone()),
            Plan::Aggregate(_, g, a) => Plan::Aggregate(Box::new(next()), g.clone(), a.clone()),
        }
    }

    /// Apply `f` bottom-up to every node, rebuilding the tree.
    pub fn transform_up(&self, f: &mut impl FnMut(Plan) -> Plan) -> Plan {
        let children = self
            .children()
            .into_iter()
            .map(|c| c.transform_up(f))
            .collect();
        f(self.with_children(children))
    }

    /// Number of operator nodes.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Names of the relations scanned by this plan (deduplicated, in
    /// left-to-right first-occurrence order).
    pub fn relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations<'a>(&'a self, out: &mut Vec<&'a str>) {
        if let Plan::Relation(n) = self {
            if !out.contains(&n.as_str()) {
                out.push(n);
            }
        }
        for c in self.children() {
            c.collect_relations(out);
        }
    }

    /// Whether the plan contains an invocation of an *active* binding
    /// pattern — determined statically against `catalog`. Queries without
    /// active invocations always have empty action sets, and their β
    /// operators may be freely reorganised (§3.3).
    pub fn has_active_invocation(&self, catalog: &dyn SchemaCatalog) -> Result<bool, PlanError> {
        if let Plan::Invoke(p, proto, service_attr) = self {
            let s = p.schema(catalog)?;
            let (_, bp) = ops::invoke_schema(&s, proto, service_attr.as_str())?;
            if bp.is_active() {
                return Ok(true);
            }
        }
        for c in self.children() {
            if c.has_active_invocation(catalog)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// One-line algebra notation, e.g.
    /// `β sendMessage[messenger] (α text:='Bonjour!' (σ name <> 'Carla' (contacts)))`.
    pub fn to_algebra(&self) -> String {
        match self {
            Plan::Relation(n) => n.clone(),
            Plan::Union(a, b) => format!("({} ∪ {})", a.to_algebra(), b.to_algebra()),
            Plan::Intersect(a, b) => format!("({} ∩ {})", a.to_algebra(), b.to_algebra()),
            Plan::Difference(a, b) => format!("({} − {})", a.to_algebra(), b.to_algebra()),
            Plan::Project(p, attrs) => {
                let list = attrs
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                format!("π {list} ({})", p.to_algebra())
            }
            Plan::Select(p, f) => format!("σ {f} ({})", p.to_algebra()),
            Plan::Rename(p, a, b) => format!("ρ {a}→{b} ({})", p.to_algebra()),
            Plan::Join(a, b) => format!("({} ⋈ {})", a.to_algebra(), b.to_algebra()),
            Plan::Assign(p, a, s) => format!("α {a}:={s} ({})", p.to_algebra()),
            Plan::Invoke(p, proto, sa) => format!("β {proto}[{sa}] ({})", p.to_algebra()),
            Plan::Aggregate(p, group, aggs) => {
                let g = group
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                let a = aggs
                    .iter()
                    .map(|s| format!("{:?}({})→{}", s.fun, s.attr, s.as_name))
                    .collect::<Vec<_>>()
                    .join(",");
                format!("γ [{g}; {a}] ({})", p.to_algebra())
            }
        }
    }

    /// Multi-line `EXPLAIN`-style tree, with inferred schemas when a
    /// catalog is supplied.
    pub fn explain(&self, catalog: Option<&dyn SchemaCatalog>) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0, catalog);
        out
    }

    /// The one-line `EXPLAIN` label of this node (operator + arguments,
    /// children excluded) — shared by [`Plan::explain`] and the
    /// `EXPLAIN ANALYZE` rendering in [`crate::exec`].
    pub fn explain_label(&self) -> String {
        match self {
            Plan::Relation(n) => format!("Relation {n}"),
            Plan::Union(..) => "Union".to_string(),
            Plan::Intersect(..) => "Intersect".to_string(),
            Plan::Difference(..) => "Difference".to_string(),
            Plan::Project(_, attrs) => format!(
                "Project [{}]",
                attrs
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Plan::Select(_, f) => format!("Select {f}"),
            Plan::Rename(_, a, b) => format!("Rename {a} → {b}"),
            Plan::Join(..) => "NaturalJoin".to_string(),
            Plan::Assign(_, a, s) => format!("Assign {a} := {s}"),
            Plan::Invoke(_, p, sa) => format!("Invoke {p}[{sa}]"),
            Plan::Aggregate(_, g, a) => format!(
                "Aggregate group=[{}] aggs={}",
                g.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                a.len()
            ),
        }
    }

    fn explain_into(&self, out: &mut String, depth: usize, catalog: Option<&dyn SchemaCatalog>) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.explain_label());
        if let Some(cat) = catalog {
            match self.schema(cat) {
                Ok(s) => out.push_str(&format!("  {s:?}")),
                Err(e) => out.push_str(&format!("  !{e}")),
            }
        }
        out.push('\n');
        for c in self.children() {
            c.explain_into(out, depth + 1, catalog);
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_algebra())
    }
}

/// Schema-only catalog built from `(name, schema)` pairs — handy in tests
/// and the optimizer's cost model.
#[derive(Default, Clone)]
pub struct MapCatalog {
    map: std::collections::BTreeMap<String, SchemaRef>,
}

impl MapCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a schema under `name` (builder style).
    pub fn with(mut self, name: impl Into<String>, schema: SchemaRef) -> Self {
        self.map.insert(name.into(), schema);
        self
    }

    /// Insert a schema under `name`.
    pub fn insert(&mut self, name: impl Into<String>, schema: SchemaRef) {
        self.map.insert(name.into(), schema);
    }
}

impl SchemaLookup for MapCatalog {
    fn lookup(&self, name: &str) -> Option<&SchemaRef> {
        self.map.get(name)
    }
}

/// The one-shot example queries of Table 4, as plan constructors. `Q3`/`Q4`
/// (the continuous queries) live in `serena-stream` since they involve
/// window/streaming operators.
pub mod examples {
    use super::*;
    use crate::formula::Formula;

    /// `Q1 = β_{sendMessage[messenger]}(α_{text:='Bonjour!'}(σ_{name≠'Carla'}(contacts)))`
    pub fn q1() -> Plan {
        Plan::relation("contacts")
            .select(Formula::ne_const("name", "Carla"))
            .assign_const("text", "Bonjour!")
            .invoke("sendMessage", "messenger")
    }

    /// `Q1' = σ_{name≠'Carla'}(β_{sendMessage[messenger]}(α_{text:='Bonjour!'}(contacts)))`
    /// — *not* equivalent to `Q1`: it also messages Carla (Example 6).
    pub fn q1_prime() -> Plan {
        Plan::relation("contacts")
            .assign_const("text", "Bonjour!")
            .invoke("sendMessage", "messenger")
            .select(Formula::ne_const("name", "Carla"))
    }

    /// `Q2 = π_photo(β_{takePhoto[camera]}(σ_{quality≥5}(β_{checkPhoto[camera]}(σ_{area='office'}(cameras)))))`
    pub fn q2() -> Plan {
        Plan::relation("cameras")
            .select(Formula::eq_const("area", "office"))
            .invoke("checkPhoto", "camera")
            .select(Formula::ge_const("quality", 5))
            .invoke("takePhoto", "camera")
            .project(["photo"])
    }

    /// `Q2'`: the un-pushed version of `Q2` — all selections after
    /// `checkPhoto` — equivalent to `Q2` because `checkPhoto` is passive
    /// (Example 7).
    pub fn q2_prime() -> Plan {
        Plan::relation("cameras")
            .invoke("checkPhoto", "camera")
            .select(Formula::eq_const("area", "office").and(Formula::ge_const("quality", 5)))
            .invoke("takePhoto", "camera")
            .project(["photo"])
    }
}

#[cfg(test)]
mod tests {
    use super::examples::*;
    use super::*;
    use crate::env::examples::example_environment;
    use crate::formula::Formula;

    #[test]
    fn q1_schema_inference() {
        let env = example_environment();
        let s = q1().schema(&env).unwrap();
        // after β, both text and sent are real; no BPs remain
        assert!(s.is_real("text"));
        assert!(s.is_real("sent"));
        assert!(s.binding_patterns().is_empty());
    }

    #[test]
    fn q2_schema_inference() {
        let env = example_environment();
        let s = q2().schema(&env).unwrap();
        let names: Vec<String> = s.names().map(|a| a.to_string()).collect();
        assert_eq!(names, vec!["photo"]);
        assert!(s.is_real("photo"));
    }

    #[test]
    fn invalid_plans_rejected_statically() {
        let env = example_environment();
        // selection on virtual attr
        let bad = Plan::relation("contacts").select(Formula::eq_const("sent", true));
        assert!(matches!(
            bad.schema(&env),
            Err(PlanError::SelectionOnVirtual(_))
        ));
        // invoke with virtual input
        let bad = Plan::relation("contacts").invoke("sendMessage", "messenger");
        assert!(matches!(
            bad.schema(&env),
            Err(PlanError::InvokeInputNotReal { .. })
        ));
        // unknown relation
        assert!(matches!(
            Plan::relation("nope").schema(&env),
            Err(PlanError::UnknownRelation(_))
        ));
    }

    #[test]
    fn active_invocation_detection() {
        let env = example_environment();
        assert!(q1().has_active_invocation(&env).unwrap());
        assert!(!q2().has_active_invocation(&env).unwrap());
        assert!(!Plan::relation("contacts")
            .has_active_invocation(&env)
            .unwrap());
    }

    #[test]
    fn algebra_rendering() {
        assert_eq!(
            q1().to_algebra(),
            "β sendMessage[messenger] (α text:='Bonjour!' (σ name <> 'Carla' (contacts)))"
        );
    }

    #[test]
    fn explain_renders_tree_with_schemas() {
        let env = example_environment();
        let text = q2().explain(Some(&env));
        assert!(text.contains("Project [photo]"));
        assert!(text.contains("Invoke takePhoto[camera]"));
        assert!(text.contains("Relation cameras"));
        assert!(text.contains("\n  "));
    }

    #[test]
    fn transform_up_identity() {
        let p = q2();
        let q = p.transform_up(&mut |n| n);
        assert_eq!(p, q);
    }

    #[test]
    fn node_count_and_relations() {
        assert_eq!(q1().node_count(), 4);
        assert_eq!(q1().relations(), vec!["contacts"]);
        let j = Plan::relation("a").join(Plan::relation("b").join(Plan::relation("a")));
        assert_eq!(j.relations(), vec!["a", "b"]);
    }

    #[test]
    fn with_children_rebuilds() {
        let p = Plan::relation("x").select(Formula::True);
        let rebuilt = p.with_children(vec![Plan::relation("y")]);
        assert_eq!(rebuilt, Plan::relation("y").select(Formula::True));
    }

    #[test]
    fn map_catalog_works() {
        let cat = MapCatalog::new().with("contacts", crate::schema::examples::contacts_schema());
        assert!(Plan::relation("contacts").schema(&cat).is_ok());
        assert!(Plan::relation("absent").schema(&cat).is_err());
    }
}
