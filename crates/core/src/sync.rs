//! Minimal synchronization primitives over [`std::sync`].
//!
//! The workspace builds without registry access, so instead of depending on
//! `parking_lot` we wrap the standard-library locks with the same ergonomic
//! API (`lock()`/`read()`/`write()` returning guards directly). Lock
//! poisoning is deliberately ignored: a panic while holding one of these
//! locks never leaves partially-updated invariants the rest of the system
//! relies on, and the paper's experiments value forward progress over
//! poison propagation.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1; // does not panic
        assert_eq!(*m.lock(), 1);
    }
}
