//! One-shot query evaluation (§3.2 evaluation model).
//!
//! "The evaluation of query q over a relational pervasive environment p
//! occurs at a given instant τ: service invocations, through invocation
//! operators, are defined by the corresponding invocation functions at the
//! given instant." The evaluator — [`ExecContext`](crate::exec::ExecContext)
//! — interprets a [`Plan`](crate::plan::Plan) against an
//! [`Environment`](crate::env::Environment), resolving service invocations
//! through an [`Invoker`] at a fixed [`Instant`], and collects the query's
//! action set (Definition 8) along the way. This module keeps the shared
//! evaluation vocabulary: [`EvalOutcome`] and the [`CountingInvoker`]
//! instrument.

use crate::action::ActionSet;
use crate::error::EvalError;
use crate::service::Invoker;
use crate::time::Instant;
use crate::xrelation::XRelation;

/// The result of evaluating a query: the output X-Relation and the action
/// set of the active invocations it triggered.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// The resulting X-Relation.
    pub relation: XRelation,
    /// `Actions_p(q)` (Definition 8).
    pub actions: ActionSet,
}

/// An [`Invoker`] decorator counting invocations per prototype — the
/// instrument behind the optimizer benchmarks (how many service calls did a
/// plan actually make?).
///
/// Like every [`Invoker`], this type is `Send + Sync` and safe to call from
/// several threads at once: the counters live behind a mutex, so when
/// parallel β ([`ExecOptions::invoke_parallelism`]) fans one batch across a
/// worker pool, each concurrent call still increments exactly once and no
/// count is lost.
///
/// [`ExecOptions::invoke_parallelism`]: crate::physical::ExecOptions
pub struct CountingInvoker<'a> {
    inner: &'a dyn Invoker,
    counts: crate::sync::Mutex<std::collections::BTreeMap<String, u64>>,
}

impl<'a> CountingInvoker<'a> {
    /// Wrap an invoker.
    pub fn new(inner: &'a dyn Invoker) -> Self {
        CountingInvoker {
            inner,
            counts: crate::sync::Mutex::new(Default::default()),
        }
    }

    /// Total number of invocations across all prototypes.
    pub fn total(&self) -> u64 {
        self.counts.lock().values().sum()
    }

    /// Invocations of one prototype.
    pub fn count_of(&self, prototype: &str) -> u64 {
        self.counts.lock().get(prototype).copied().unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> std::collections::BTreeMap<String, u64> {
        self.counts.lock().clone()
    }
}

impl Invoker for CountingInvoker<'_> {
    fn invoke(
        &self,
        prototype: &crate::prototype::Prototype,
        service_ref: &crate::value::ServiceRef,
        input: &crate::tuple::Tuple,
        at: Instant,
    ) -> Result<Vec<crate::tuple::Tuple>, EvalError> {
        *self
            .counts
            .lock()
            .entry(prototype.name().to_string())
            .or_insert(0) += 1;
        self.inner.invoke(prototype, service_ref, input, at)
    }

    fn providers_of(&self, prototype: &str) -> Vec<crate::value::ServiceRef> {
        self.inner.providers_of(prototype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::Environment;
    use crate::exec::ExecContext;
    use crate::plan::Plan;

    /// Test-local shorthand for the one-shot evaluation path — the public
    /// entrypoint is `ExecContext::new(env, invoker, at).execute(plan)`.
    fn evaluate(
        plan: &Plan,
        env: &Environment,
        invoker: &dyn Invoker,
        at: Instant,
    ) -> Result<EvalOutcome, EvalError> {
        ExecContext::new(env, invoker, at).execute(plan)
    }
    use crate::env::examples::example_environment;
    use crate::formula::Formula;
    use crate::plan::examples::{q1, q1_prime, q2, q2_prime};
    use crate::service::fixtures::example_registry;
    use crate::tuple;

    #[test]
    fn q1_evaluation_matches_example_6() {
        let env = example_environment();
        let reg = example_registry();
        let out = evaluate(&q1(), &env, &reg, Instant::ZERO).unwrap();
        assert_eq!(out.relation.len(), 2);
        let rendered: Vec<String> = out.actions.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "(sendMessage[messenger], email, (nicolas@elysee.fr, Bonjour!))",
                "(sendMessage[messenger], jabber, (francois@im.gouv.fr, Bonjour!))",
            ]
        );
    }

    #[test]
    fn q1_prime_messages_carla_too() {
        let env = example_environment();
        let reg = example_registry();
        let out = evaluate(&q1_prime(), &env, &reg, Instant::ZERO).unwrap();
        // result excludes Carla, but the action set includes her
        assert_eq!(out.relation.len(), 2);
        assert_eq!(out.actions.len(), 3);
        assert!(out
            .actions
            .iter()
            .any(|a| a.input().to_string().contains("carla@elysee.fr")));
    }

    #[test]
    fn q2_produces_photos_with_empty_action_set() {
        let env = example_environment();
        let reg = example_registry();
        let out = evaluate(&q2(), &env, &reg, Instant(1)).unwrap();
        assert!(out.actions.is_empty());
        // whether photos exist depends on quality ≥ 5 at instant 1 — just
        // check schema & determinism
        let out2 = evaluate(&q2(), &env, &reg, Instant(1)).unwrap();
        assert_eq!(out.relation, out2.relation);
    }

    #[test]
    fn q2_and_q2_prime_agree() {
        let env = example_environment();
        let reg = example_registry();
        for t in 0..5 {
            let a = evaluate(&q2(), &env, &reg, Instant(t)).unwrap();
            let b = evaluate(&q2_prime(), &env, &reg, Instant(t)).unwrap();
            assert_eq!(a.relation, b.relation, "at instant {t}");
            assert_eq!(a.actions, b.actions);
        }
    }

    #[test]
    fn counting_invoker_measures_pushdown_benefit() {
        let env = example_environment();
        let reg = example_registry();
        let counting = CountingInvoker::new(&reg);
        evaluate(&q2(), &env, &counting, Instant(0)).unwrap();
        let pushed = counting.count_of("checkPhoto");
        let counting2 = CountingInvoker::new(&reg);
        evaluate(&q2_prime(), &env, &counting2, Instant(0)).unwrap();
        let unpushed = counting2.count_of("checkPhoto");
        // Q2 filters area='office' (2 of 3 cameras) before checkPhoto.
        assert_eq!(pushed, 2);
        assert_eq!(unpushed, 3);
    }

    #[test]
    fn set_and_relational_plan_evaluation() {
        let env = example_environment();
        let reg = example_registry();
        let p = Plan::relation("contacts")
            .select(Formula::eq_const("messenger", "email"))
            .union(Plan::relation("contacts").select(Formula::eq_const("messenger", "jabber")));
        let out = evaluate(&p, &env, &reg, Instant::ZERO).unwrap();
        assert_eq!(out.relation.len(), 3);
        assert!(out.actions.is_empty());
    }

    #[test]
    fn mean_temperature_pipeline() {
        use crate::ops::{AggFun, AggSpec};
        let env = example_environment();
        let reg = example_registry();
        // γ_{location; avg(temperature)}(β_{getTemperature[sensor]}(sensors))
        let p = Plan::relation("sensors")
            .invoke("getTemperature", "sensor")
            .aggregate(
                ["location"],
                vec![AggSpec::new(AggFun::Avg, "temperature").named("mean_temp")],
            );
        let out = evaluate(&p, &env, &reg, Instant(2)).unwrap();
        assert_eq!(out.relation.len(), 3); // corridor, office, roof
        assert!(out.actions.is_empty());
    }

    #[test]
    fn unknown_relation_fails() {
        let env = example_environment();
        let reg = example_registry();
        assert!(evaluate(&Plan::relation("ghost"), &env, &reg, Instant::ZERO).is_err());
    }

    #[test]
    fn rename_then_join_plan() {
        let env = example_environment();
        let reg = example_registry();
        // rename contacts.name→manager then join with itself projected
        let p = Plan::relation("contacts")
            .project(["name", "address"])
            .rename("name", "who");
        let out = evaluate(&p, &env, &reg, Instant::ZERO).unwrap();
        assert!(out.relation.schema().is_real("who"));
        assert_eq!(out.relation.len(), 3);
        assert!(out
            .relation
            .contains(&tuple!["Nicolas", "nicolas@elysee.fr"]));
    }
}
