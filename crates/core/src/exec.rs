//! Instrumented one-shot execution: [`ExecContext`].
//!
//! An `ExecContext` bundles everything an evaluation needs — the
//! [`Environment`] (the catalog of X-Relations), the [`Invoker`] resolving
//! service calls, the evaluation [`Instant`] τ, and a [`MetricsSink`]
//! receiving one [`crate::metrics::OpObservation`] per operator
//! application: tuples in/out,
//! β invocation counts and failures, and wall-clock self-time per node.
//!
//! [`ExecContext::new(env, invoker, at).execute(plan)`](ExecContext::execute)
//! is *the* one-shot evaluation entrypoint (the historical free function
//! `evaluate` was a thin wrapper over it and has been removed).
//!
//! Plan nodes are numbered by **pre-order index** (root = 0, children left
//! to right) — the same numbering [`explain_analyze_text`] uses to line
//! recorded statistics back up with the plan tree.

use crate::env::Environment;
use crate::error::EvalError;
use crate::eval::EvalOutcome;
use crate::metrics::{ExecStats, MetricsSink, NodeId, NoopMetrics};
use crate::physical::{ExecOptions, PhysicalPlan};
use crate::plan::Plan;
use crate::service::Invoker;
use crate::time::Instant;

static NOOP: NoopMetrics = NoopMetrics;

/// Everything a one-shot evaluation needs, plus where its per-operator
/// observations go.
pub struct ExecContext<'a> {
    /// The relational pervasive environment `p`.
    pub env: &'a Environment,
    /// Service invocation resolver.
    pub invoker: &'a dyn Invoker,
    /// Evaluation instant τ.
    pub at: Instant,
    /// Observation sink ([`NoopMetrics`] by default).
    pub metrics: &'a dyn MetricsSink,
    /// Execution knobs (β parallelism; serial by default).
    pub options: ExecOptions,
}

impl<'a> ExecContext<'a> {
    /// Context with the default (discarding) metrics sink.
    pub fn new(env: &'a Environment, invoker: &'a dyn Invoker, at: Instant) -> Self {
        ExecContext {
            env,
            invoker,
            at,
            metrics: &NOOP,
            options: ExecOptions::default(),
        }
    }

    /// Context reporting every operator application to `metrics`.
    pub fn with_metrics(
        env: &'a Environment,
        invoker: &'a dyn Invoker,
        at: Instant,
        metrics: &'a dyn MetricsSink,
    ) -> Self {
        ExecContext {
            env,
            invoker,
            at,
            metrics,
            options: ExecOptions::default(),
        }
    }

    /// Replace the execution options (builder style).
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Evaluate `plan`: compile it against the context's environment
    /// ([`PhysicalPlan::compile`]) and execute the compiled form, reporting
    /// one observation per operator to the context's sink. Node ids are
    /// assigned in pre-order.
    ///
    /// Callers evaluating the same plan repeatedly should compile once and
    /// call [`PhysicalPlan::execute`] directly; this convenience wrapper
    /// recompiles on every call.
    pub fn execute(&self, plan: &Plan) -> Result<EvalOutcome, EvalError> {
        let physical = PhysicalPlan::compile(plan, self.env).map_err(EvalError::from)?;
        physical.execute(self)
    }
}

/// Render `plan` as an `EXPLAIN ANALYZE`-style tree: the plan's operators
/// annotated with the statistics `stats` recorded for them (matched by
/// pre-order [`NodeId`]). Nodes without recorded stats (e.g. never reached
/// because an earlier sibling failed) are annotated `[not executed]`.
pub fn explain_analyze_text(plan: &Plan, stats: &ExecStats) -> String {
    let mut out = String::new();
    let mut next_id = 0usize;
    render_node(plan, stats, 0, &mut next_id, &mut out);
    out
}

fn render_node(
    plan: &Plan,
    stats: &ExecStats,
    depth: usize,
    next_id: &mut usize,
    out: &mut String,
) {
    let id = NodeId(*next_id);
    *next_id += 1;
    out.push_str(&"  ".repeat(depth));
    out.push_str(&plan.explain_label());
    match stats.node(id) {
        Some(s) => {
            out.push_str(&format!("  [{s}]"));
        }
        None => out.push_str("  [not executed]"),
    }
    out.push('\n');
    for c in plan.children() {
        render_node(c, stats, depth + 1, next_id, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::examples::example_environment;
    use crate::formula::Formula;
    use crate::metrics::OpKind;
    use crate::ops::{AggFun, AggSpec};
    use crate::plan::examples::q1;
    use crate::service::fixtures::example_registry;

    /// Per-operator counters: a σ/π/β/γ pipeline over the running example.
    #[test]
    fn exec_stats_counts_per_operator() {
        let env = example_environment();
        let reg = example_registry();
        // γ(π(β(σ(sensors)))) — pre-order: 0=γ 1=π 2=β 3=σ 4=Relation
        let plan = Plan::relation("sensors")
            .select(Formula::ne_const("location", "roof"))
            .invoke("getTemperature", "sensor")
            .project(["location", "temperature"])
            .aggregate(
                ["location"],
                vec![AggSpec::new(AggFun::Avg, "temperature").named("mean")],
            );
        let stats = ExecStats::new();
        let out = ExecContext::with_metrics(&env, &reg, Instant(1), &stats)
            .execute(&plan)
            .unwrap();

        let nodes = stats.nodes();
        assert_eq!(nodes.len(), 5);
        assert_eq!(nodes[&NodeId(0)].op, OpKind::Aggregate);
        assert_eq!(nodes[&NodeId(1)].op, OpKind::Project);
        assert_eq!(nodes[&NodeId(2)].op, OpKind::Invoke);
        assert_eq!(nodes[&NodeId(3)].op, OpKind::Select);
        assert_eq!(nodes[&NodeId(4)].op, OpKind::Relation);

        // sensors has 4 rows, 3 of them off the roof
        assert_eq!(nodes[&NodeId(4)].tuples_out, 4);
        assert_eq!(nodes[&NodeId(3)].tuples_in, 4);
        assert_eq!(nodes[&NodeId(3)].tuples_out, 3);
        // β invokes once per surviving tuple — all cold misses one-shot
        assert_eq!(nodes[&NodeId(2)].invocations, 3);
        assert_eq!(nodes[&NodeId(2)].cache_misses, 3);
        assert_eq!(nodes[&NodeId(2)].cache_hits, 0);
        assert_eq!(nodes[&NodeId(2)].failures, 0);
        assert_eq!(stats.total_invocations(), 3);
        // the root observation matches the returned cardinality
        assert_eq!(stats.root_tuples_out(), Some(out.relation.len() as u64));
        assert_eq!(nodes[&NodeId(0)].applications, 1);
    }

    /// Binary operators report combined child cardinality as tuples_in.
    #[test]
    fn binary_operators_report_both_inputs() {
        let env = example_environment();
        let reg = example_registry();
        let plan = Plan::relation("contacts")
            .select(Formula::eq_const("messenger", "email"))
            .union(Plan::relation("contacts"));
        let stats = ExecStats::new();
        ExecContext::with_metrics(&env, &reg, Instant::ZERO, &stats)
            .execute(&plan)
            .unwrap();
        let union = stats.node(NodeId(0)).unwrap();
        assert_eq!(union.op, OpKind::Union);
        // contacts has 3 rows; 2 use email
        assert_eq!(union.tuples_in, 2 + 3);
        assert_eq!(union.tuples_out, 3);
    }

    /// A failing invocation is recorded (invocations attempted, failure
    /// counted) before the error propagates.
    #[test]
    fn failures_are_recorded_before_error_propagates() {
        let env = example_environment();
        // q1 over an empty registry: sendMessage resolution fails on the
        // first tuple.
        let empty = crate::service::StaticRegistry::new();
        let stats = ExecStats::new();
        let err = ExecContext::with_metrics(&env, &empty, Instant::ZERO, &stats).execute(&q1());
        assert!(err.is_err());
        assert_eq!(stats.total_failures(), 1);
        assert_eq!(stats.total_invocations(), 1);
        // the noop path still errors identically
        assert!(ExecContext::new(&env, &empty, Instant::ZERO)
            .execute(&q1())
            .is_err());
    }

    #[test]
    fn explain_analyze_text_lines_up_with_plan() {
        let env = example_environment();
        let reg = example_registry();
        let plan = Plan::relation("cameras")
            .select(Formula::eq_const("area", "office"))
            .invoke("checkPhoto", "camera");
        let stats = ExecStats::new();
        ExecContext::with_metrics(&env, &reg, Instant(0), &stats)
            .execute(&plan)
            .unwrap();
        let text = explain_analyze_text(&plan, &stats);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("Invoke checkPhoto[camera]"), "{text}");
        assert!(lines[0].contains("invocations=2"), "{text}");
        assert!(lines[1].trim_start().starts_with("Select"), "{text}");
        assert!(
            lines[2].trim_start().starts_with("Relation cameras"),
            "{text}"
        );
        // a node never executed renders as such
        let cold = ExecStats::new();
        let cold_text = explain_analyze_text(&plan, &cold);
        assert!(cold_text.contains("[not executed]"));
    }
}
