//! Discrete logical time (§3.2, §4.1).
//!
//! The paper defines query evaluation over "a discrete and ordered time
//! domain T of time instants τ" (in the spirit of CQL) and assumes services
//! are deterministic *at a given instant*. We reify that as a `u64` logical
//! instant: every invocation function receives the instant, every simulated
//! service is a pure function of (service, instant, input), and the
//! continuous executor advances instants one tick at a time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A discrete time instant `τ ∈ T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(pub u64);

impl Instant {
    /// The origin of the time domain.
    pub const ZERO: Instant = Instant(0);

    /// The next instant.
    pub fn next(self) -> Instant {
        Instant(self.0 + 1)
    }

    /// The previous instant, saturating at zero.
    pub fn prev(self) -> Instant {
        Instant(self.0.saturating_sub(1))
    }

    /// Raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Instants `max(0, self-period+1) ..= self`: the span covered by a
    /// window `W[period]` evaluated at `self` (§4.2).
    pub fn window_span(self, period: u64) -> std::ops::RangeInclusive<u64> {
        let start = self.0.saturating_sub(period.saturating_sub(1));
        start..=self.0
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ={}", self.0)
    }
}

impl Add<u64> for Instant {
    type Output = Instant;
    fn add(self, rhs: u64) -> Instant {
        Instant(self.0 + rhs)
    }
}

impl AddAssign<u64> for Instant {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Instant> for Instant {
    type Output = u64;
    fn sub(self, rhs: Instant) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl From<u64> for Instant {
    fn from(t: u64) -> Self {
        Instant(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Instant(5);
        assert_eq!(t.next(), Instant(6));
        assert_eq!(t.prev(), Instant(4));
        assert_eq!(Instant::ZERO.prev(), Instant::ZERO);
        assert_eq!(t + 3, Instant(8));
        assert_eq!(Instant(8) - t, 3);
        assert_eq!(t - Instant(8), 0); // saturating
    }

    #[test]
    fn window_span_covers_last_period_instants() {
        assert_eq!(Instant(10).window_span(1), 10..=10);
        assert_eq!(Instant(10).window_span(3), 8..=10);
        assert_eq!(Instant(1).window_span(5), 0..=1);
        assert_eq!(Instant(0).window_span(0), 0..=0);
    }

    #[test]
    fn display() {
        assert_eq!(Instant(7).to_string(), "τ=7");
    }
}
