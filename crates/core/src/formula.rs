//! Selection formulas over real schemas (Table 3(b)).
//!
//! "Selection formulas can only apply on attributes from the real schema,
//! as virtual attributes do not have a value." Validation against a schema
//! rejects virtual or unknown attributes and type-incoherent comparisons at
//! plan time; evaluation then implements the logical implication `t ⊨ F`.

use std::collections::BTreeSet;
use std::fmt;

use crate::attr::AttrName;
use crate::error::{EvalError, PlanError};
use crate::schema::XSchema;
use crate::tuple::Tuple;
use crate::value::{DataType, Value};

/// A term of a comparison: a (real) attribute or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Attribute reference — must be real at validation time.
    Attr(AttrName),
    /// Constant from `D`.
    Const(Value),
}

impl Expr {
    /// Attribute term.
    pub fn attr(name: impl Into<AttrName>) -> Expr {
        Expr::Attr(name.into())
    }

    /// Constant term.
    pub fn val(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// Declared/static type of the term under `schema`, if resolvable.
    fn static_type(&self, schema: &XSchema) -> Option<DataType> {
        match self {
            Expr::Attr(a) => schema.type_of(a.as_str()),
            Expr::Const(v) => Some(v.data_type()),
        }
    }

    fn eval<'a>(&'a self, schema: &XSchema, t: &'a Tuple) -> Result<Value, EvalError> {
        match self {
            Expr::Attr(a) => schema
                .project_tuple_attr(t, a.as_str())
                .ok_or_else(|| EvalError::Value(format!("attribute `{a}` has no value"))),
            Expr::Const(v) => Ok(v.clone()),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Attr(a) => write!(f, "{a}"),
            Expr::Const(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Const(v) => write!(f, "{v}"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn needs_order(self) -> bool {
        !matches!(self, CmpOp::Eq | CmpOp::Ne)
    }

    fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A selection formula `F` over a real schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// Always true (neutral element for ∧).
    True,
    /// Always false.
    False,
    /// `lhs op rhs`
    Cmp(Expr, CmpOp, Expr),
    /// `attr CONTAINS 'needle'` — substring match on a STRING attribute.
    /// Extension beyond the paper's selection formulas, required by its own
    /// RSS experiment (§5.2: "continuous queries providing the last RSS
    /// items containing a given word").
    Contains(AttrName, String),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl Formula {
    /// `attr op const` comparison.
    pub fn cmp(attr: impl Into<AttrName>, op: CmpOp, v: impl Into<Value>) -> Formula {
        Formula::Cmp(Expr::Attr(attr.into()), op, Expr::Const(v.into()))
    }

    /// `attr = const`.
    pub fn eq_const(attr: impl Into<AttrName>, v: impl Into<Value>) -> Formula {
        Formula::cmp(attr, CmpOp::Eq, v)
    }

    /// `attr <> const`.
    pub fn ne_const(attr: impl Into<AttrName>, v: impl Into<Value>) -> Formula {
        Formula::cmp(attr, CmpOp::Ne, v)
    }

    /// `attr > const`.
    pub fn gt_const(attr: impl Into<AttrName>, v: impl Into<Value>) -> Formula {
        Formula::cmp(attr, CmpOp::Gt, v)
    }

    /// `attr >= const`.
    pub fn ge_const(attr: impl Into<AttrName>, v: impl Into<Value>) -> Formula {
        Formula::cmp(attr, CmpOp::Ge, v)
    }

    /// `attr < const`.
    pub fn lt_const(attr: impl Into<AttrName>, v: impl Into<Value>) -> Formula {
        Formula::cmp(attr, CmpOp::Lt, v)
    }

    /// `attr <= const`.
    pub fn le_const(attr: impl Into<AttrName>, v: impl Into<Value>) -> Formula {
        Formula::cmp(attr, CmpOp::Le, v)
    }

    /// `a op b` between two attributes.
    pub fn cmp_attrs(a: impl Into<AttrName>, op: CmpOp, b: impl Into<AttrName>) -> Formula {
        Formula::Cmp(Expr::Attr(a.into()), op, Expr::Attr(b.into()))
    }

    /// `attr CONTAINS 'needle'` (extension; see [`Formula::Contains`]).
    pub fn contains_const(attr: impl Into<AttrName>, needle: impl Into<String>) -> Formula {
        Formula::Contains(attr.into(), needle.into())
    }

    /// Conjunction.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// The set of attributes referenced by the formula (`A ∉ F` tests in
    /// the rewrite rules of Table 5).
    pub fn attrs(&self) -> BTreeSet<AttrName> {
        let mut out = BTreeSet::new();
        self.collect_attrs(&mut out);
        out
    }

    fn collect_attrs(&self, out: &mut BTreeSet<AttrName>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Contains(a, _) => {
                out.insert(a.clone());
            }
            Formula::Cmp(l, _, r) => {
                if let Expr::Attr(a) = l {
                    out.insert(a.clone());
                }
                if let Expr::Attr(a) = r {
                    out.insert(a.clone());
                }
            }
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_attrs(out);
                b.collect_attrs(out);
            }
            Formula::Not(a) => a.collect_attrs(out),
        }
    }

    /// Whether the formula references `attr`.
    pub fn references(&self, attr: &str) -> bool {
        self.attrs().iter().any(|a| a.as_str() == attr)
    }

    /// Validate against a schema: every referenced attribute must be a
    /// *real* attribute (Table 3(b)) and comparisons must be type-coherent.
    pub fn validate(&self, schema: &XSchema) -> Result<(), PlanError> {
        match self {
            Formula::True | Formula::False => Ok(()),
            Formula::Contains(a, _) => {
                if !schema.contains(a.as_str()) {
                    return Err(PlanError::Schema(
                        crate::error::SchemaError::UnknownAttribute(a.clone()),
                    ));
                }
                if !schema.is_real(a.as_str()) {
                    return Err(PlanError::SelectionOnVirtual(a.clone()));
                }
                let ty = schema.type_of(a.as_str()).expect("present");
                if !matches!(ty, DataType::Str | DataType::Service) {
                    return Err(PlanError::FormulaTypeMismatch {
                        context: format!("{a} CONTAINS …"),
                        left: ty,
                        right: DataType::Str,
                    });
                }
                Ok(())
            }
            Formula::Cmp(l, op, r) => {
                for e in [l, r] {
                    if let Expr::Attr(a) = e {
                        if !schema.contains(a.as_str()) {
                            return Err(PlanError::Schema(
                                crate::error::SchemaError::UnknownAttribute(a.clone()),
                            ));
                        }
                        if !schema.is_real(a.as_str()) {
                            return Err(PlanError::SelectionOnVirtual(a.clone()));
                        }
                    }
                }
                let lt = l.static_type(schema).expect("checked above");
                let rt = r.static_type(schema).expect("checked above");
                let coherent = lt == rt
                    || matches!(
                        (lt, rt),
                        (DataType::Int, DataType::Real)
                            | (DataType::Real, DataType::Int)
                            | (DataType::Str, DataType::Service)
                            | (DataType::Service, DataType::Str)
                    );
                if !coherent {
                    return Err(PlanError::FormulaTypeMismatch {
                        context: format!("{l} {op} {r}"),
                        left: lt,
                        right: rt,
                    });
                }
                if op.needs_order() && !(lt.is_ordered() && rt.is_ordered()) {
                    return Err(PlanError::FormulaTypeMismatch {
                        context: format!("{l} {op} {r} (type not ordered)"),
                        left: lt,
                        right: rt,
                    });
                }
                Ok(())
            }
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.validate(schema)?;
                b.validate(schema)
            }
            Formula::Not(a) => a.validate(schema),
        }
    }

    /// `t ⊨ F`: evaluate over a tuple of `schema`. The formula must have
    /// been validated against `schema`.
    pub fn eval(&self, schema: &XSchema, t: &Tuple) -> Result<bool, EvalError> {
        match self {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Contains(a, needle) => {
                let v = schema
                    .project_tuple_attr(t, a.as_str())
                    .ok_or_else(|| EvalError::Value(format!("attribute `{a}` has no value")))?;
                let s = v
                    .as_str()
                    .ok_or_else(|| EvalError::Value(format!("`{a}` is not a string")))?;
                Ok(s.contains(needle.as_str()))
            }
            Formula::Cmp(l, op, r) => {
                let lv = l.eval(schema, t)?;
                let rv = r.eval(schema, t)?;
                let ord = lv.partial_cmp_typed(&rv).ok_or_else(|| {
                    EvalError::Value(format!(
                        "incomparable values {lv} ({}) and {rv} ({})",
                        lv.data_type(),
                        rv.data_type()
                    ))
                })?;
                Ok(op.test(ord))
            }
            Formula::And(a, b) => Ok(a.eval(schema, t)? && b.eval(schema, t)?),
            Formula::Or(a, b) => Ok(a.eval(schema, t)? || b.eval(schema, t)?),
            Formula::Not(a) => Ok(!a.eval(schema, t)?),
        }
    }

    /// A copy with every reference to attribute `from` renamed to `to`
    /// (used when commuting σ with ρ).
    pub fn rename_attr(&self, from: &str, to: &AttrName) -> Formula {
        let fix = |e: &Expr| match e {
            Expr::Attr(a) if a.as_str() == from => Expr::Attr(to.clone()),
            other => other.clone(),
        };
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Contains(a, needle) => {
                let a = if a.as_str() == from {
                    to.clone()
                } else {
                    a.clone()
                };
                Formula::Contains(a, needle.clone())
            }
            Formula::Cmp(l, op, r) => Formula::Cmp(fix(l), *op, fix(r)),
            Formula::And(a, b) => Formula::And(
                Box::new(a.rename_attr(from, to)),
                Box::new(b.rename_attr(from, to)),
            ),
            Formula::Or(a, b) => Formula::Or(
                Box::new(a.rename_attr(from, to)),
                Box::new(b.rename_attr(from, to)),
            ),
            Formula::Not(a) => Formula::Not(Box::new(a.rename_attr(from, to))),
        }
    }

    /// Compile against a schema: resolve attribute coordinates once so the
    /// hot selection path avoids name lookups per tuple (performance-guide
    /// idiom: hoist invariant work out of the per-tuple loop).
    pub fn compile(&self, schema: &XSchema) -> Result<CompiledFormula, PlanError> {
        self.validate(schema)?;
        Ok(CompiledFormula {
            prog: CompiledNode::build(self, schema),
        })
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Contains(a, needle) => write!(f, "{a} CONTAINS '{needle}'"),
            Formula::Cmp(l, op, r) => write!(f, "{l} {op} {r}"),
            Formula::And(a, b) => write!(f, "({a} ∧ {b})"),
            Formula::Or(a, b) => write!(f, "({a} ∨ {b})"),
            Formula::Not(a) => write!(f, "¬({a})"),
        }
    }
}

/// Coordinate-resolved formula for fast per-tuple evaluation.
pub struct CompiledFormula {
    prog: CompiledNode,
}

enum CompiledExpr {
    Coord(usize),
    Const(Value),
}

impl CompiledExpr {
    #[inline]
    fn eval<'a>(&'a self, t: &'a Tuple) -> &'a Value {
        match self {
            CompiledExpr::Coord(c) => &t[*c],
            CompiledExpr::Const(v) => v,
        }
    }
}

enum CompiledNode {
    Bool(bool),
    Contains(usize, String),
    Cmp(CompiledExpr, CmpOp, CompiledExpr),
    And(Box<CompiledNode>, Box<CompiledNode>),
    Or(Box<CompiledNode>, Box<CompiledNode>),
    Not(Box<CompiledNode>),
}

impl CompiledNode {
    fn build(f: &Formula, schema: &XSchema) -> CompiledNode {
        let cexpr = |e: &Expr| match e {
            Expr::Attr(a) => {
                CompiledExpr::Coord(schema.coord_of(a.as_str()).expect("validated: real attr"))
            }
            Expr::Const(v) => CompiledExpr::Const(v.clone()),
        };
        match f {
            Formula::True => CompiledNode::Bool(true),
            Formula::False => CompiledNode::Bool(false),
            Formula::Contains(a, needle) => CompiledNode::Contains(
                schema.coord_of(a.as_str()).expect("validated: real attr"),
                needle.clone(),
            ),
            Formula::Cmp(l, op, r) => CompiledNode::Cmp(cexpr(l), *op, cexpr(r)),
            Formula::And(a, b) => CompiledNode::And(
                Box::new(CompiledNode::build(a, schema)),
                Box::new(CompiledNode::build(b, schema)),
            ),
            Formula::Or(a, b) => CompiledNode::Or(
                Box::new(CompiledNode::build(a, schema)),
                Box::new(CompiledNode::build(b, schema)),
            ),
            Formula::Not(a) => CompiledNode::Not(Box::new(CompiledNode::build(a, schema))),
        }
    }

    fn eval(&self, t: &Tuple) -> Result<bool, EvalError> {
        match self {
            CompiledNode::Bool(b) => Ok(*b),
            CompiledNode::Contains(c, needle) => {
                let v = &t[*c];
                let s = v
                    .as_str()
                    .ok_or_else(|| EvalError::Value(format!("{v} is not a string")))?;
                Ok(s.contains(needle.as_str()))
            }
            CompiledNode::Cmp(l, op, r) => {
                let lv = l.eval(t);
                let rv = r.eval(t);
                let ord = lv.partial_cmp_typed(rv).ok_or_else(|| {
                    EvalError::Value(format!("incomparable values {lv} and {rv}"))
                })?;
                Ok(op.test(ord))
            }
            CompiledNode::And(a, b) => Ok(a.eval(t)? && b.eval(t)?),
            CompiledNode::Or(a, b) => Ok(a.eval(t)? || b.eval(t)?),
            CompiledNode::Not(a) => Ok(!a.eval(t)?),
        }
    }
}

impl CompiledFormula {
    /// Evaluate `t ⊨ F`.
    #[inline]
    pub fn matches(&self, t: &Tuple) -> Result<bool, EvalError> {
        self.prog.eval(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::examples::contacts_schema;
    use crate::tuple;

    fn nicolas() -> Tuple {
        tuple!["Nicolas", "nicolas@elysee.fr", "email"]
    }

    #[test]
    fn q1_formula_from_table_4() {
        // name <> 'Carla'
        let f = Formula::ne_const("name", "Carla");
        let s = contacts_schema();
        f.validate(&s).unwrap();
        assert!(f.eval(&s, &nicolas()).unwrap());
        assert!(!f
            .eval(&s, &tuple!["Carla", "carla@elysee.fr", "email"])
            .unwrap());
    }

    #[test]
    fn virtual_attribute_rejected() {
        let s = contacts_schema();
        let f = Formula::eq_const("sent", true);
        assert!(matches!(
            f.validate(&s),
            Err(PlanError::SelectionOnVirtual(_))
        ));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let s = contacts_schema();
        let f = Formula::eq_const("ghost", 1);
        assert!(f.validate(&s).is_err());
    }

    #[test]
    fn type_incoherent_comparison_rejected() {
        let s = contacts_schema();
        // name STRING vs 1 INTEGER
        let f = Formula::eq_const("name", 1);
        assert!(matches!(
            f.validate(&s),
            Err(PlanError::FormulaTypeMismatch { .. })
        ));
    }

    #[test]
    fn ordering_comparison_on_service_str_allowed() {
        let s = contacts_schema();
        let f = Formula::eq_const("messenger", "email");
        f.validate(&s).unwrap();
        assert!(f.eval(&s, &nicolas()).unwrap());
    }

    #[test]
    fn connectives() {
        let s = contacts_schema();
        let f = Formula::eq_const("name", "Nicolas")
            .and(Formula::eq_const("messenger", "email"))
            .or(Formula::False)
            .not()
            .not();
        f.validate(&s).unwrap();
        assert!(f.eval(&s, &nicolas()).unwrap());
    }

    #[test]
    fn attrs_collection_and_references() {
        let f = Formula::eq_const("a", 1)
            .and(Formula::cmp_attrs("b", CmpOp::Lt, "c"))
            .or(Formula::ne_const("a", 2));
        let names: Vec<String> = f.attrs().iter().map(|a| a.to_string()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(f.references("b"));
        assert!(!f.references("d"));
    }

    #[test]
    fn rename_rewrites_references() {
        let f = Formula::eq_const("name", "Carla").and(Formula::ne_const("addr", "x"));
        let g = f.rename_attr("name", &AttrName::new("who"));
        assert!(g.references("who"));
        assert!(!g.references("name"));
        assert!(g.references("addr"));
    }

    #[test]
    fn compiled_formula_agrees_with_interpreted() {
        let s = contacts_schema();
        let f = Formula::ne_const("name", "Carla").and(Formula::eq_const("messenger", "email"));
        let c = f.compile(&s).unwrap();
        for t in crate::xrelation::examples::contacts().iter() {
            assert_eq!(c.matches(t).unwrap(), f.eval(&s, t).unwrap());
        }
    }

    #[test]
    fn numeric_widening_in_comparison() {
        let s = crate::schema::XSchema::builder()
            .real("x", DataType::Int)
            .build()
            .unwrap();
        let f = Formula::gt_const("x", 1.5);
        f.validate(&s).unwrap();
        assert!(f.eval(&s, &tuple![2]).unwrap());
        assert!(!f.eval(&s, &tuple![1]).unwrap());
    }

    #[test]
    fn display_is_readable() {
        let f = Formula::eq_const("name", "Carla").not();
        assert_eq!(f.to_string(), "¬(name = 'Carla')");
    }
}
