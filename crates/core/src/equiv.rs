//! Query equivalence (Definition 9).
//!
//! `q1 ≡ q2` iff for any environment `p`, `q1(p) = q2(p)` **and**
//! `Actions_p(q1) = Actions_p(q2)` — same result relation and same set of
//! active invocations, evaluated at the same discrete time instant with
//! instant-deterministic services.
//!
//! Universal quantification over environments cannot be decided by
//! execution, so this module provides an *empirical refutation harness*:
//! evaluate both queries over one or many (randomized) environments and
//! instants and compare. The rewrite rules of Table 5 are additionally
//! proven sound by their preconditions; the harness backs those proofs with
//! property tests.

use crate::env::Environment;
use crate::error::EvalError;
use crate::exec::ExecContext;
use crate::plan::Plan;
use crate::service::Invoker;
use crate::time::Instant;

/// Verdict of an empirical equivalence check at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// Result relations are set-equal (tolerating attribute order).
    pub results_equal: bool,
    /// Action sets are equal.
    pub actions_equal: bool,
    /// Instant at which both queries were evaluated.
    pub at: Instant,
    /// Cardinalities, for diagnostics: (|q1|, |q2|).
    pub cardinalities: (usize, usize),
    /// Action-set sizes, for diagnostics.
    pub action_counts: (usize, usize),
}

impl EquivalenceReport {
    /// Whether both halves of Definition 9 hold at this instant.
    pub fn equivalent(&self) -> bool {
        self.results_equal && self.actions_equal
    }
}

/// Evaluate `q1` and `q2` over `env` at `at` and compare result relations
/// and action sets (Definition 9, specialised to one environment and one
/// instant).
pub fn check_at(
    q1: &Plan,
    q2: &Plan,
    env: &Environment,
    invoker: &dyn Invoker,
    at: Instant,
) -> Result<EquivalenceReport, EvalError> {
    let ctx = ExecContext::new(env, invoker, at);
    let o1 = ctx.execute(q1)?;
    let o2 = ctx.execute(q2)?;
    Ok(EquivalenceReport {
        results_equal: o1.relation == o2.relation,
        actions_equal: o1.actions == o2.actions,
        at,
        cardinalities: (o1.relation.len(), o2.relation.len()),
        action_counts: (o1.actions.len(), o2.actions.len()),
    })
}

/// Check equivalence across a range of instants; returns the first
/// counter-example report, or the last (equivalent) report if none.
pub fn check_over_instants(
    q1: &Plan,
    q2: &Plan,
    env: &Environment,
    invoker: &dyn Invoker,
    instants: impl IntoIterator<Item = Instant>,
) -> Result<EquivalenceReport, EvalError> {
    let mut last = None;
    for at in instants {
        let report = check_at(q1, q2, env, invoker, at)?;
        if !report.equivalent() {
            return Ok(report);
        }
        last = Some(report);
    }
    Ok(last.expect("at least one instant required"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::examples::example_environment;
    use crate::plan::examples::{q1, q1_prime, q2, q2_prime};
    use crate::service::fixtures::example_registry;

    #[test]
    fn q1_and_q1_prime_not_equivalent_example_7() {
        let env = example_environment();
        let reg = example_registry();
        let report = check_at(&q1(), &q1_prime(), &env, &reg, Instant::ZERO).unwrap();
        // "their resulting X-Relation should be the same" …
        assert!(report.results_equal);
        // … "Q1 and Q1' are not equivalent because of their action sets"
        assert!(!report.actions_equal);
        assert!(!report.equivalent());
        assert_eq!(report.action_counts, (2, 3));
    }

    #[test]
    fn q2_and_q2_prime_equivalent_example_7() {
        let env = example_environment();
        let reg = example_registry();
        let report =
            check_over_instants(&q2(), &q2_prime(), &env, &reg, (0..10).map(Instant)).unwrap();
        assert!(report.equivalent());
        assert_eq!(report.action_counts, (0, 0));
    }

    #[test]
    fn query_is_equivalent_to_itself() {
        let env = example_environment();
        let reg = example_registry();
        let report = check_at(&q1(), &q1(), &env, &reg, Instant(4)).unwrap();
        assert!(report.equivalent());
    }

    #[test]
    fn time_dependence_detected_across_instants() {
        // The same passive query at two *different* instants may differ —
        // the harness compares at one shared instant by construction, so
        // simulate the mismatch by comparing q2 against itself shifted.
        let env = example_environment();
        let reg = example_registry();
        let eval_at = |at: Instant| ExecContext::new(&env, &reg, at).execute(&q2()).unwrap();
        let a = eval_at(Instant(0));
        let b = eval_at(Instant(1));
        // (not asserting inequality universally — but the quality function
        // varies with t, so photo sets differ at least between some pair)
        let differs = (0..5).any(|t| {
            let x = eval_at(Instant(t));
            let y = eval_at(Instant(t + 1));
            x.relation != y.relation
        });
        assert!(differs || a.relation == b.relation);
    }
}
