//! Action sets (Definition 8).
//!
//! An *action* is a 3-tuple `(bp, s, t)` — an active binding pattern, a
//! service reference and an input tuple — recording one side-effecting
//! invocation triggered by a query. The *action set* of a query is the set
//! of all such actions; Definition 9 makes it half of query equivalence:
//! two queries are equivalent iff they produce the same result *and* the
//! same action set.

use std::collections::BTreeSet;
use std::fmt;

use crate::binding::BindingPattern;
use crate::tuple::Tuple;
use crate::value::ServiceRef;

/// One action `(bp, s, t)` (Definition 8).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Action {
    bp: BindingPattern,
    service: ServiceRef,
    input: Tuple,
}

impl Action {
    /// Record an action.
    pub fn new(bp: BindingPattern, service: ServiceRef, input: Tuple) -> Self {
        Action { bp, service, input }
    }

    /// The active binding pattern.
    pub fn binding_pattern(&self) -> &BindingPattern {
        &self.bp
    }

    /// The service reference invoked.
    pub fn service(&self) -> &ServiceRef {
        &self.service
    }

    /// The input tuple over `Input_ψ`.
    pub fn input(&self) -> &Tuple {
        &self.input
    }

    /// Canonical sort key (prototype, service attr, service ref, input).
    fn sort_key(&self) -> (String, String, String, String) {
        (
            self.bp.prototype().name().to_string(),
            self.bp.service_attr().to_string(),
            self.service.to_string(),
            format!("{}", self.input),
        )
    }
}

impl PartialOrd for Action {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Action {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.sort_key().cmp(&other.sort_key())
    }
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Matches the paper's notation, e.g.
        // (bp1, email, (nicolas@elysee.fr, Bonjour!))
        write!(f, "({}, {}, {})", self.bp, self.service, self.input)
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A set of actions — `Actions_p(q)`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct ActionSet {
    actions: BTreeSet<Action>,
}

impl ActionSet {
    /// The empty action set (every passive-only query has this one).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an action. Set semantics: duplicates collapse, mirroring
    /// Definition 8's set-of-3-tuples.
    pub fn record(&mut self, action: Action) -> bool {
        self.actions.insert(action)
    }

    /// Number of distinct actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True iff no active binding pattern was invoked.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Iterate in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Action> {
        self.actions.iter()
    }

    /// Membership test.
    pub fn contains(&self, a: &Action) -> bool {
        self.actions.contains(a)
    }

    /// Union in place (queries compose; so do their action sets).
    pub fn extend(&mut self, other: ActionSet) {
        self.actions.extend(other.actions);
    }
}

impl fmt::Debug for ActionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for ActionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Action> for ActionSet {
    fn from_iter<I: IntoIterator<Item = Action>>(iter: I) -> Self {
        ActionSet {
            actions: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a ActionSet {
    type Item = &'a Action;
    type IntoIter = std::collections::btree_set::Iter<'a, Action>;
    fn into_iter(self) -> Self::IntoIter {
        self.actions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prototype::examples as protos;
    use crate::tuple;

    fn bp1() -> BindingPattern {
        BindingPattern::new(protos::send_message(), "messenger")
    }

    #[test]
    fn action_display_matches_paper_example_6() {
        let a = Action::new(
            bp1(),
            ServiceRef::new("email"),
            tuple!["nicolas@elysee.fr", "Bonjour!"],
        );
        assert_eq!(
            a.to_string(),
            "(sendMessage[messenger], email, (nicolas@elysee.fr, Bonjour!))"
        );
    }

    #[test]
    fn set_semantics() {
        let mut s = ActionSet::new();
        let a = Action::new(bp1(), ServiceRef::new("email"), tuple!["x", "hi"]);
        assert!(s.record(a.clone()));
        assert!(!s.record(a.clone()));
        assert_eq!(s.len(), 1);
        assert!(s.contains(&a));
    }

    #[test]
    fn equality_is_content_based() {
        let mk = |addr: &str| {
            let mut s = ActionSet::new();
            s.record(Action::new(
                bp1(),
                ServiceRef::new("email"),
                tuple![addr, "Bonjour!"],
            ));
            s
        };
        assert_eq!(mk("a@b"), mk("a@b"));
        assert_ne!(mk("a@b"), mk("c@d"));
    }

    #[test]
    fn extend_unions() {
        let a1 = Action::new(bp1(), ServiceRef::new("email"), tuple!["a", "x"]);
        let a2 = Action::new(bp1(), ServiceRef::new("jabber"), tuple!["b", "x"]);
        let mut s: ActionSet = vec![a1.clone()].into_iter().collect();
        let t: ActionSet = vec![a1, a2].into_iter().collect();
        s.extend(t);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iteration_is_canonical_order() {
        let mut s = ActionSet::new();
        s.record(Action::new(
            bp1(),
            ServiceRef::new("jabber"),
            tuple!["b", "x"],
        ));
        s.record(Action::new(
            bp1(),
            ServiceRef::new("email"),
            tuple!["a", "x"],
        ));
        let services: Vec<String> = s.iter().map(|a| a.service().to_string()).collect();
        assert_eq!(services, vec!["email", "jabber"]);
    }
}
