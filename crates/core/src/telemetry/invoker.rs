//! Invocation-level instrumentation: latency, outcomes, health feed.
//!
//! [`InstrumentedInvoker`] decorates any [`Invoker`] and, per call, records
//! wall-clock latency into per-service registry series, notifies an
//! [`InvocationObserver`] (the hook service-health trackers implement), and
//! emits [`TraceEvent::Invocation`]/[`TraceEvent::Failure`] trace events —
//! without changing the call's result in any way. This sits *under* the β
//! operator, so both the one-shot executor and the batched/parallel
//! continuous path (`InvokeRecipe::call_batch`) are observed identically.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crate::error::EvalError;
use crate::prototype::Prototype;
use crate::service::{Invoker, InvokerLayer};
use crate::sync::RwLock;
use crate::time::Instant;
use crate::tuple::Tuple;
use crate::value::ServiceRef;

use super::histogram::Histogram;
use super::registry::{Counter, MetricsRegistry};
use super::span::FlightRecorder;
use super::trace::{TraceEvent, TraceSink};

/// Receives the outcome of every β service invocation — the feed for
/// service-health tracking. `error` is `None` on success.
pub trait InvocationObserver: Send + Sync {
    /// Report one completed invocation.
    fn observe_invocation(
        &self,
        service: &ServiceRef,
        prototype: &str,
        at: Instant,
        latency: Duration,
        error: Option<&EvalError>,
    );
}

/// Cached per-service series handles.
#[derive(Clone)]
struct ServiceSeries {
    latency: Arc<Histogram>,
    calls: Arc<Counter>,
    failures: Arc<Counter>,
}

/// An [`Invoker`] decorator measuring every call.
///
/// Registry series (when a registry is attached):
/// `serena_service_latency_ns{service}` (histogram),
/// `serena_service_calls_total{service}` and
/// `serena_service_failures_total{service}` (counters). Series handles are
/// cached per [`ServiceRef`], so steady-state recording takes one read
/// lock plus a few atomic updates.
///
/// Generic over the wrapped invoker `I` (a `&dyn Invoker`, a concrete
/// registry, or a `Box<dyn Invoker>` from an
/// [`InvokerStack`](crate::service::InvokerStack) — see
/// [`InstrumentedLayer`]).
pub struct InstrumentedInvoker<'a, I> {
    inner: I,
    registry: Option<&'a MetricsRegistry>,
    observer: Option<&'a dyn InvocationObserver>,
    trace: Option<&'a dyn TraceSink>,
    tracer: Option<&'a FlightRecorder>,
    series: RwLock<HashMap<ServiceRef, ServiceSeries>>,
}

impl<'a, I: Invoker> InstrumentedInvoker<'a, I> {
    /// Wrap `inner` with no outputs attached (a transparent pass-through
    /// until [`Self::with_registry`] / [`Self::with_observer`] /
    /// [`Self::with_trace`] add some).
    pub fn new(inner: I) -> Self {
        InstrumentedInvoker {
            inner,
            registry: None,
            observer: None,
            trace: None,
            tracer: None,
            series: RwLock::new(HashMap::new()),
        }
    }

    /// Record per-service latency/call/failure series into `registry`.
    pub fn with_registry(mut self, registry: &'a MetricsRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Notify `observer` of every invocation outcome.
    pub fn with_observer(mut self, observer: &'a dyn InvocationObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Emit invocation/failure trace events to `trace`.
    pub fn with_trace(mut self, trace: &'a dyn TraceSink) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Record one `beta.attempt` span per call into `tracer`, and stamp
    /// the span id as the latency histogram's exemplar.
    pub fn with_tracer(mut self, tracer: &'a FlightRecorder) -> Self {
        self.tracer = Some(tracer);
        self
    }

    fn series_for(&self, registry: &MetricsRegistry, service: &ServiceRef) -> ServiceSeries {
        if let Some(series) = self.series.read().get(service) {
            return series.clone();
        }
        let labels: [(&str, &str); 1] = [("service", service.as_str())];
        let series = ServiceSeries {
            latency: registry.histogram("serena_service_latency_ns", &labels),
            calls: registry.counter("serena_service_calls_total", &labels),
            failures: registry.counter("serena_service_failures_total", &labels),
        };
        self.series
            .write()
            .entry(service.clone())
            .or_insert(series)
            .clone()
    }
}

impl<I: Invoker> Invoker for InstrumentedInvoker<'_, I> {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        let mut span = self.tracer.and_then(|t| t.start("beta.attempt", at));
        if let Some(s) = span.as_mut() {
            s.attr_str("service", service_ref.as_str());
            s.attr_str("prototype", prototype.name());
        }
        let started = std::time::Instant::now();
        let result = {
            let _in_span = span.as_ref().map(|s| s.enter());
            self.inner.invoke(prototype, service_ref, input, at)
        };
        let latency = started.elapsed();
        let span_id = span.as_ref().map_or(0, |s| s.id());
        if let Some(s) = span.as_mut() {
            s.attr_u64("ok", result.is_ok() as u64);
            if let Err(e) = &result {
                s.attr_str("error", e.to_string());
            }
        }
        drop(span); // close before the latency sample so the exemplar resolves

        if let Some(registry) = self.registry {
            let series = self.series_for(registry, service_ref);
            series.latency.record_with_exemplar(
                u128::min(latency.as_nanos(), u64::MAX as u128) as u64,
                span_id,
            );
            series.calls.inc();
            if result.is_err() {
                series.failures.inc();
            }
        }
        if let Some(observer) = self.observer {
            observer.observe_invocation(
                service_ref,
                prototype.name(),
                at,
                latency,
                result.as_ref().err(),
            );
        }
        if let Some(trace) = self.trace {
            trace.emit(&TraceEvent::Invocation {
                service: service_ref.to_string(),
                prototype: prototype.name().to_string(),
                at,
                latency_ns: u128::min(latency.as_nanos(), u64::MAX as u128) as u64,
                ok: result.is_ok(),
            });
            if let Err(e) = &result {
                trace.emit(&TraceEvent::Failure {
                    scope: service_ref.to_string(),
                    at,
                    message: e.to_string(),
                });
            }
        }
        result
    }

    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
        self.inner.providers_of(prototype)
    }
}

/// The [`InvokerLayer`] form of [`InstrumentedInvoker`], for use with
/// [`InvokerStack`](crate::service::InvokerStack): the layer holds the
/// instrumentation config and, when the stack is built, wraps the invoker
/// below it.
///
/// ```
/// use serena_core::prelude::*;
/// use serena_core::telemetry::InstrumentedLayer;
///
/// let base = serena_core::service::fixtures::example_registry();
/// let registry = MetricsRegistry::new();
/// let stack = InvokerStack::new(base).layer(InstrumentedLayer::new().registry(&registry));
/// assert!(!stack.providers_of("getTemperature").is_empty());
/// ```
#[derive(Default, Clone, Copy)]
pub struct InstrumentedLayer<'a> {
    registry: Option<&'a MetricsRegistry>,
    observer: Option<&'a dyn InvocationObserver>,
    trace: Option<&'a dyn TraceSink>,
    tracer: Option<&'a FlightRecorder>,
}

impl<'a> InstrumentedLayer<'a> {
    /// A layer with no outputs attached yet.
    pub fn new() -> Self {
        InstrumentedLayer::default()
    }

    /// Record per-service latency/call/failure series into `registry`.
    pub fn registry(mut self, registry: &'a MetricsRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Notify `observer` of every invocation outcome.
    pub fn observer(mut self, observer: &'a dyn InvocationObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Emit invocation/failure trace events to `trace`.
    pub fn trace(mut self, trace: &'a dyn TraceSink) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Record `beta.attempt` spans into `tracer` (see
    /// [`InstrumentedInvoker::with_tracer`]).
    pub fn tracer(mut self, tracer: &'a FlightRecorder) -> Self {
        self.tracer = Some(tracer);
        self
    }
}

impl<'a> InvokerLayer<'a> for InstrumentedLayer<'a> {
    fn wrap(self, inner: Box<dyn Invoker + 'a>) -> Box<dyn Invoker + 'a> {
        let mut invoker = InstrumentedInvoker::new(inner);
        if let Some(registry) = self.registry {
            invoker = invoker.with_registry(registry);
        }
        if let Some(observer) = self.observer {
            invoker = invoker.with_observer(observer);
        }
        if let Some(trace) = self.trace {
            invoker = invoker.with_trace(trace);
        }
        if let Some(tracer) = self.tracer {
            invoker = invoker.with_tracer(tracer);
        }
        Box::new(invoker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prototype::examples as protos;
    use crate::service::fixtures::example_registry;
    use crate::sync::Mutex;
    use crate::telemetry::trace::MemoryTrace;

    #[derive(Default)]
    struct Outcomes(Mutex<Vec<(String, String, bool)>>);

    impl InvocationObserver for Outcomes {
        fn observe_invocation(
            &self,
            service: &ServiceRef,
            prototype: &str,
            _at: Instant,
            _latency: Duration,
            error: Option<&EvalError>,
        ) {
            self.0
                .lock()
                .push((service.to_string(), prototype.to_string(), error.is_none()));
        }
    }

    #[test]
    fn records_latency_outcomes_and_traces() {
        let inner = example_registry();
        let registry = MetricsRegistry::new();
        let outcomes = Outcomes::default();
        let trace = MemoryTrace::new();
        let invoker = InstrumentedInvoker::new(&inner)
            .with_registry(&registry)
            .with_observer(&outcomes)
            .with_trace(&trace);

        let sref = ServiceRef::new("sensor01");
        let ghost = ServiceRef::new("ghost");
        invoker
            .invoke(
                &protos::get_temperature(),
                &sref,
                &Tuple::empty(),
                Instant(1),
            )
            .unwrap();
        invoker
            .invoke(
                &protos::get_temperature(),
                &sref,
                &Tuple::empty(),
                Instant(2),
            )
            .unwrap();
        let err = invoker.invoke(
            &protos::get_temperature(),
            &ghost,
            &Tuple::empty(),
            Instant(3),
        );
        assert!(err.is_err());

        let s = [("service", "sensor01")];
        assert_eq!(
            registry.counter_value("serena_service_calls_total", &s),
            Some(2)
        );
        assert_eq!(
            registry.counter_value("serena_service_failures_total", &s),
            Some(0)
        );
        assert_eq!(
            registry.counter_value("serena_service_failures_total", &[("service", "ghost")]),
            Some(1)
        );
        assert_eq!(
            registry.histogram("serena_service_latency_ns", &s).count(),
            2
        );

        let seen = outcomes.0.lock().clone();
        assert_eq!(seen.len(), 3);
        assert!(seen[0].2 && seen[1].2 && !seen[2].2);
        assert_eq!(seen[2].0, "ghost");

        // 3 invocation events + 1 failure event
        let events = trace.events();
        assert_eq!(events.len(), 4);
        assert!(matches!(
            &events[3],
            TraceEvent::Failure { scope, .. } if scope == "ghost"
        ));
        // pass-through: discovery is undisturbed
        assert!(!invoker.providers_of("getTemperature").is_empty());
    }

    #[test]
    fn bare_wrapper_is_transparent() {
        let inner = example_registry();
        let invoker = InstrumentedInvoker::new(&inner);
        let out = invoker
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor01"),
                &Tuple::empty(),
                Instant(0),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
    }
}
