//! Named metric series: counters, gauges, histograms, Prometheus text.
//!
//! A [`MetricsRegistry`] is a concurrent map from *(metric name, sorted
//! label set)* to a shared metric instrument. Lookups take a read lock and
//! return an [`Arc`] handle; hot paths resolve their handles once and then
//! update them with plain atomic operations — the registry lock is never
//! held while recording.
//!
//! [`MetricsRegistry::render_prometheus`] serialises every series in the
//! [Prometheus text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! `# TYPE` headers, `name{label="value"} sample` lines, and cumulative
//! `_bucket`/`_sum`/`_count` series for histograms.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::RwLock;

use super::histogram::Histogram;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// `(name, sorted labels)` — the identity of one series.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// A concurrent registry of named counters, gauges and histograms with a
/// Prometheus text renderer.
///
/// Names should follow Prometheus conventions (`snake_case`, counters
/// ending in `_total`, unit suffixes like `_ns`). A name must be used for
/// only one instrument kind.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<SeriesKey, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<SeriesKey, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<SeriesKey, Arc<Histogram>>>,
}

fn get_or_create<T: Default>(
    map: &RwLock<BTreeMap<SeriesKey, Arc<T>>>,
    name: &str,
    labels: &[(&str, &str)],
) -> Arc<T> {
    let key = SeriesKey::new(name, labels);
    if let Some(existing) = map.read().get(&key) {
        return Arc::clone(existing);
    }
    Arc::clone(map.write().entry(key).or_default())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handle to the counter `name{labels}` (created on first use).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        get_or_create(&self.counters, name, labels)
    }

    /// Handle to the gauge `name{labels}` (created on first use).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        get_or_create(&self.gauges, name, labels)
    }

    /// Handle to the histogram `name{labels}` (created on first use).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        get_or_create(&self.histograms, name, labels)
    }

    /// Current value of a counter series, if it exists.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .read()
            .get(&SeriesKey::new(name, labels))
            .map(|c| c.get())
    }

    /// Sum of all counter series sharing `name` (across label sets).
    pub fn sum_counters(&self, name: &str) -> u64 {
        self.counters
            .read()
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, c)| c.get())
            .sum()
    }

    /// Remove every series (counter, gauge or histogram, any metric name)
    /// carrying the label `label_key="label_value"`, returning how many
    /// series were dropped.
    ///
    /// This is how per-entity series are retired when the entity goes
    /// away — e.g. deregistering a continuous query must not leave its
    /// `query="…"` gauges frozen at their last values forever.
    pub fn remove_matching(&self, label_key: &str, label_value: &str) -> usize {
        fn sweep<T>(
            map: &RwLock<BTreeMap<SeriesKey, Arc<T>>>,
            label_key: &str,
            label_value: &str,
        ) -> usize {
            let mut map = map.write();
            let before = map.len();
            map.retain(|k, _| {
                !k.labels
                    .iter()
                    .any(|(lk, lv)| lk == label_key && lv == label_value)
            });
            before - map.len()
        }
        sweep(&self.counters, label_key, label_value)
            + sweep(&self.gauges, label_key, label_value)
            + sweep(&self.histograms, label_key, label_value)
    }

    /// Render every series in the Prometheus text exposition format.
    ///
    /// Series are ordered by name then label set; each family gets one
    /// `# TYPE` header. Histograms emit cumulative `_bucket` lines for
    /// their non-empty buckets plus the `+Inf` bucket, `_sum` and
    /// `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();

        let counters = self.counters.read();
        let mut last = None::<&str>;
        for (key, c) in counters.iter() {
            type_header(&mut out, &mut last, &key.name, "counter");
            let _ = writeln!(out, "{}{} {}", key.name, labels(&key.labels, None), c.get());
        }
        drop(counters);

        let gauges = self.gauges.read();
        let mut last = None::<&str>;
        for (key, g) in gauges.iter() {
            type_header(&mut out, &mut last, &key.name, "gauge");
            let _ = writeln!(out, "{}{} {}", key.name, labels(&key.labels, None), g.get());
        }
        drop(gauges);

        let histograms = self.histograms.read();
        let mut last = None::<&str>;
        for (key, h) in histograms.iter() {
            type_header(&mut out, &mut last, &key.name, "histogram");
            for (le, cum) in h.cumulative_buckets() {
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    key.name,
                    labels(&key.labels, Some(&le.to_string())),
                    cum
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                key.name,
                labels(&key.labels, Some("+Inf")),
                h.count()
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                key.name,
                labels(&key.labels, None),
                h.sum()
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                key.name,
                labels(&key.labels, None),
                h.count()
            );
        }
        out
    }
}

/// Write a `# TYPE` header the first time `name` is seen.
fn type_header<'a>(out: &mut String, last: &mut Option<&'a str>, name: &'a str, kind: &str) {
    if *last != Some(name) {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        *last = Some(name);
    }
}

/// Format a label set as `{k="v",…}` (empty string for no labels); `le`
/// appends the histogram bucket bound label.
fn labels(pairs: &[(String, String)], le: Option<&str>) -> String {
    if pairs.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in pairs {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escape a label value per the Prometheus text format (`\`, `"`, `\n`).
///
/// A raw carriage return would also break the line-oriented exposition
/// format (the spec defines no escape for it), so `\r` is rendered as the
/// two characters `\r` too — scrapers stay parseable even when a hostile
/// service name embeds one.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_lock_free_to_update() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("serena_ticks_total", &[("query", "q1")]);
        let b = reg.counter("serena_ticks_total", &[("query", "q1")]);
        a.inc();
        b.add(2);
        assert_eq!(
            reg.counter_value("serena_ticks_total", &[("query", "q1")]),
            Some(3)
        );
        // label order is normalised
        let c = reg.counter("multi", &[("b", "2"), ("a", "1")]);
        c.inc();
        assert_eq!(
            reg.counter_value("multi", &[("a", "1"), ("b", "2")]),
            Some(1)
        );
    }

    #[test]
    fn sum_counters_spans_label_sets() {
        let reg = MetricsRegistry::new();
        reg.counter("calls_total", &[("service", "s1")]).add(2);
        reg.counter("calls_total", &[("service", "s2")]).add(3);
        reg.counter("other_total", &[]).add(100);
        assert_eq!(reg.sum_counters("calls_total"), 5);
        assert_eq!(reg.sum_counters("missing"), 0);
    }

    #[test]
    fn render_prometheus_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("serena_invocations_total", &[("service", "sensor01")])
            .add(4);
        reg.gauge("serena_services", &[]).set(2);
        let h = reg.histogram("serena_latency_ns", &[("service", "sensor01")]);
        h.record(100);
        h.record(5_000);

        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE serena_invocations_total counter"));
        assert!(text.contains("serena_invocations_total{service=\"sensor01\"} 4"));
        assert!(text.contains("# TYPE serena_services gauge"));
        assert!(text.contains("serena_services 2"));
        assert!(text.contains("# TYPE serena_latency_ns histogram"));
        assert!(text.contains("serena_latency_ns_bucket{service=\"sensor01\",le=\"+Inf\"} 2"));
        assert!(text.contains("serena_latency_ns_sum{service=\"sensor01\"} 5100"));
        assert!(text.contains("serena_latency_ns_count{service=\"sensor01\"} 2"));

        // Every non-comment line is `name_or_labels value` with a numeric
        // sample — the grammar Prometheus scrapers expect.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("sample separator");
            assert!(!series.is_empty());
            assert!(value.parse::<f64>().is_ok(), "bad sample in {line:?}");
        }
    }

    #[test]
    fn type_header_emitted_once_per_family() {
        let reg = MetricsRegistry::new();
        reg.counter("family_total", &[("k", "a")]).inc();
        reg.counter("family_total", &[("k", "b")]).inc();
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE family_total counter").count(), 1);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", &[("name", "a\"b\\c\nd\re")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains(r#"c_total{name="a\"b\\c\nd\re"} 1"#));
        // the rendered text stays strictly line-oriented
        assert!(!text.contains('\r'));
    }

    #[test]
    fn remove_matching_retires_an_entitys_series() {
        let reg = MetricsRegistry::new();
        reg.counter("ticks_total", &[("query", "q1")]).inc();
        reg.counter("ticks_total", &[("query", "q2")]).inc();
        reg.gauge("freshness", &[("query", "q1")]).set(5);
        reg.histogram("tick_ns", &[("query", "q1")]).record(100);
        reg.counter("global_total", &[]).inc();

        assert_eq!(reg.remove_matching("query", "q1"), 3);
        let text = reg.render_prometheus();
        assert!(!text.contains("query=\"q1\""), "q1 series linger:\n{text}");
        assert!(text.contains("ticks_total{query=\"q2\"} 1"));
        assert!(text.contains("global_total 1"));
        // removing again is a no-op
        assert_eq!(reg.remove_matching("query", "q1"), 0);
    }
}
