//! Hierarchical span tracing and the in-memory **flight recorder**.
//!
//! PR 3's [`super::trace`] answers "what happened" as a flat event stream;
//! this module answers "*where did the time go*": every interesting unit of
//! work — a scheduler round, a worker job, a query tick, one operator of a
//! compiled plan, one β attempt behind its retries — opens an
//! [`ActiveSpan`], annotates it with attributes, and closes it (RAII) into
//! a bounded ring of [`SpanRecord`]s held by the [`FlightRecorder`].
//!
//! Design constraints, in order:
//!
//! 1. **Low overhead when armed, near-zero when disarmed.** Starting a
//!    span costs one relaxed atomic load (armed check) plus, when armed,
//!    an id fetch-add and a thread-local read. Recording a finished span
//!    is one fetch-add on a per-lane cursor and one uncontended mutex
//!    swap on the targeted slot — no allocation beyond the span's own
//!    attribute vector, no global lock, no I/O.
//! 2. **Bounded memory.** Records land in per-lane ring buffers whose
//!    total capacity comes from `SERENA_TRACE_CAPACITY` (default 16384).
//!    When a lane wraps, the oldest record is dropped and
//!    [`FlightRecorder::dropped_total`] increments — surfaced as the
//!    `serena_trace_dropped_total` counter.
//! 3. **Strictly observational.** The recorder never influences execution:
//!    queries, deltas, actions and β results are byte-identical whether it
//!    is armed or disarmed (guarded by `tests/envgen_determinism.rs`).
//!
//! Parent/child linkage is implicit through a thread-local "current span"
//! ([`current`]/[`enter`]): a span started while another is entered becomes
//! its child. Work that hops threads (the scheduler's stealing pool, the β
//! fan-out in `InvokeRecipe::call_batch`) captures `current()` before the
//! hop and re-[`enter`]s it on the worker, so the tree survives migration.
//!
//! Timestamps are monotonic nanoseconds since the recorder's creation
//! ([`FlightRecorder::now_ns`]), paired with the *logical*
//! [`Instant`] of the tick the span belongs to — the
//! two clocks of a tick-based algebra engine. [`chrome_trace`] renders a
//! snapshot in the Chrome/Perfetto `trace.json` format.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::time::Instant;

/// Default total ring capacity when `SERENA_TRACE_CAPACITY` is unset.
pub const DEFAULT_CAPACITY: usize = 16_384;

/// One span attribute value: small integers stay unboxed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// An unsigned integer (counts, nanoseconds, flags as 0/1).
    U64(u64),
    /// An owned string (service names, outcome labels, error text).
    Str(String),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A finished span, as stored in the flight recorder.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (never 0; 0 means "no span" in parent links).
    pub id: u64,
    /// Parent span id, or 0 for a root.
    pub parent: u64,
    /// Static name, dot-namespaced: `sched.round`, `query.tick`,
    /// `op.join`, `beta.attempt`, …
    pub name: &'static str,
    /// Logical instant the span belongs to.
    pub at: Instant,
    /// Monotonic start, nanoseconds since recorder creation.
    pub start_ns: u64,
    /// Monotonic end, nanoseconds since recorder creation.
    pub end_ns: u64,
    /// Ring-buffer lane (≈ worker) the span was recorded on.
    pub lane: u32,
    /// Attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Wall duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Look up an attribute by key (first match).
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Look up a `U64` attribute by key.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key) {
            Some(AttrValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Look up a `Str` attribute by key.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        match self.attr(key) {
            Some(AttrValue::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }
}

/// One drop-oldest ring: a monotone cursor plus fixed slots. The cursor
/// reservation is lock-free; the slot swap takes a per-slot mutex that is
/// uncontended unless the ring wraps within one write's critical section.
struct Lane {
    cursor: AtomicU64,
    slots: Vec<Mutex<Option<SpanRecord>>>,
}

impl Lane {
    fn new(capacity: usize) -> Self {
        Lane {
            cursor: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Store a record, returning `true` if an older record was evicted.
    fn push(&self, rec: SpanRecord) -> bool {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) as usize;
        let slot = &self.slots[i % self.slots.len()];
        let evicted = slot.lock().expect("lane slot poisoned").replace(rec);
        evicted.is_some()
    }
}

thread_local! {
    /// Innermost entered span id on this thread (0 = none).
    static CURRENT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    /// Sticky lane assignment for this thread.
    static LANE_HINT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Round-robin source for thread lane assignments.
static NEXT_LANE: AtomicUsize = AtomicUsize::new(0);

/// Innermost entered span id on the calling thread (0 when none).
pub fn current() -> u64 {
    CURRENT.with(|c| c.get())
}

/// Make `id` the calling thread's current span until the guard drops.
///
/// `enter(0)` is a harmless no-op context ("no parent") — convenient when
/// re-entering a captured parent that may not exist.
pub fn enter(id: u64) -> EnterGuard {
    let prev = CURRENT.with(|c| c.replace(id));
    EnterGuard { prev }
}

/// Restores the previously-current span on drop. Not `Send`: the guard
/// must drop on the thread that entered.
pub struct EnterGuard {
    prev: u64,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// The bounded in-memory span store: per-lane rings, a global id source,
/// an armed flag and a drop counter.
#[derive(Debug)]
pub struct FlightRecorder {
    lanes: Vec<Lane>,
    armed: AtomicBool,
    next_id: AtomicU64,
    dropped: AtomicU64,
    epoch: std::time::Instant,
}

impl std::fmt::Debug for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane")
            .field("capacity", &self.slots.len())
            .field("cursor", &self.cursor.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder with `capacity` total slots, spread over one lane per
    /// available core (capped at 16), armed.
    pub fn with_capacity(capacity: usize) -> Self {
        let lanes = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, 16);
        let per_lane = (capacity / lanes).max(64);
        FlightRecorder {
            lanes: (0..lanes).map(|_| Lane::new(per_lane)).collect(),
            armed: AtomicBool::new(true),
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            epoch: std::time::Instant::now(),
        }
    }

    /// A recorder configured from the environment: `SERENA_TRACE_CAPACITY`
    /// sets the total slot count and `SERENA_TRACE=0` starts it disarmed
    /// (armed otherwise).
    pub fn from_env() -> Self {
        let capacity = std::env::var("SERENA_TRACE_CAPACITY")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        let rec = Self::with_capacity(capacity);
        if std::env::var("SERENA_TRACE").is_ok_and(|v| v.trim() == "0") {
            rec.arm(false);
        }
        rec
    }

    /// Arm or disarm recording. Disarmed, [`FlightRecorder::start`]
    /// returns `None` and the hot path reduces to one relaxed load.
    pub fn arm(&self, on: bool) {
        self.armed.store(on, Ordering::Relaxed);
    }

    /// Whether spans are currently being recorded.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Total records evicted by ring wrap since creation.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total slot capacity across lanes.
    pub fn capacity(&self) -> usize {
        self.lanes.iter().map(|l| l.slots.len()).sum()
    }

    /// Monotonic nanoseconds since this recorder was created.
    pub fn now_ns(&self) -> u64 {
        u128::min(self.epoch.elapsed().as_nanos(), u64::MAX as u128) as u64
    }

    /// Open a span as a child of the calling thread's [`current`] span.
    /// Returns `None` when disarmed (the caller's `?`/`map` chain then
    /// skips all annotation work).
    pub fn start(&self, name: &'static str, at: Instant) -> Option<ActiveSpan<'_>> {
        self.start_with(name, current(), at)
    }

    /// Open a span with an explicit parent id (0 for a root) — for work
    /// whose logical parent lives on another thread, e.g. a scheduler job
    /// carrying the id of the round that submitted it.
    pub fn start_with(
        &self,
        name: &'static str,
        parent: u64,
        at: Instant,
    ) -> Option<ActiveSpan<'_>> {
        if !self.armed() {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let start_ns = self.now_ns();
        Some(ActiveSpan {
            rec: self,
            record: Some(SpanRecord {
                id,
                parent,
                name,
                at,
                start_ns,
                end_ns: start_ns,
                lane: 0,
                attrs: Vec::new(),
            }),
        })
    }

    /// Store a finished record into the calling thread's lane.
    fn record(&self, mut rec: SpanRecord) {
        let lane = LANE_HINT.with(|h| {
            let mut v = h.get();
            if v == usize::MAX {
                v = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
                h.set(v);
            }
            v
        }) % self.lanes.len();
        rec.lane = lane as u32;
        if self.lanes[lane].push(rec) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copy every retained record out, ordered by `(start_ns, id)`.
    ///
    /// Only *closed* spans are ever retained, so a snapshot never shows a
    /// child without its interval fully measured; a parent may be missing
    /// (still open, or evicted) — consumers must tolerate dangling
    /// `parent` ids.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for lane in &self.lanes {
            for slot in &lane.slots {
                if let Some(rec) = slot.lock().expect("lane slot poisoned").as_ref() {
                    out.push(rec.clone());
                }
            }
        }
        out.sort_by_key(|r| (r.start_ns, r.id));
        out
    }

    /// Drop all retained records (the drop counter is preserved).
    pub fn clear(&self) {
        for lane in &self.lanes {
            for slot in &lane.slots {
                slot.lock().expect("lane slot poisoned").take();
            }
        }
    }
}

/// An open span: annotate with [`ActiveSpan::attr_u64`]/
/// [`ActiveSpan::attr_str`], optionally [`ActiveSpan::enter`] it so work
/// below attaches as children, and let it drop (or call
/// [`ActiveSpan::finish`]) to stamp the end time and store the record.
/// RAII guarantees every started span is closed, even across `?`/panic
/// unwinds contained further up.
pub struct ActiveSpan<'r> {
    rec: &'r FlightRecorder,
    record: Option<SpanRecord>,
}

impl ActiveSpan<'_> {
    /// This span's id, for explicit parent links and histogram exemplars.
    pub fn id(&self) -> u64 {
        self.record.as_ref().map_or(0, |r| r.id)
    }

    /// Attach an integer attribute.
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if let Some(r) = self.record.as_mut() {
            r.attrs.push((key, AttrValue::U64(value)));
        }
    }

    /// Attach a string attribute.
    pub fn attr_str(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(r) = self.record.as_mut() {
            r.attrs.push((key, AttrValue::Str(value.into())));
        }
    }

    /// Make this span the thread's current span until the guard drops.
    pub fn enter(&self) -> EnterGuard {
        enter(self.id())
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for ActiveSpan<'_> {
    fn drop(&mut self) {
        if let Some(mut r) = self.record.take() {
            r.end_ns = self.rec.now_ns();
            self.rec.record(r);
        }
    }
}

/// Minimal JSON string escaping for [`chrome_trace`].
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render spans as a Chrome/Perfetto `trace.json` document: one complete
/// (`"ph":"X"`) event per span, lanes as `tid`s, the dot-prefix of the
/// span name as its category, and span/parent ids plus all attributes in
/// `args` so the original tree is recoverable in the viewer.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let cat = s.name.split('.').next().unwrap_or(s.name);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"span\":{},\"parent\":{},\"at\":{}",
            json_escape(s.name),
            json_escape(cat),
            s.lane,
            s.start_ns as f64 / 1_000.0,
            s.duration_ns() as f64 / 1_000.0,
            s.id,
            s.parent,
            s.at.0,
        ));
        for (k, v) in &s.attrs {
            match v {
                AttrValue::U64(n) => out.push_str(&format!(",\"{}\":{n}", json_escape(k))),
                AttrValue::Str(t) => {
                    out.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(t)))
                }
            }
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_through_the_thread_local() {
        let rec = FlightRecorder::with_capacity(256);
        {
            let root = rec.start("sched.round", Instant(1)).unwrap();
            let _g = root.enter();
            let mut child = rec.start("query.tick", Instant(1)).unwrap();
            child.attr_u64("inserted", 3);
            assert_eq!(
                rec.snapshot().len(),
                0,
                "open spans are not yet in the ring"
            );
        }
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "sched.round").unwrap();
        let child = spans.iter().find(|s| s.name == "query.tick").unwrap();
        assert_eq!(child.parent, root.id);
        assert_eq!(root.parent, 0);
        assert!(child.start_ns >= root.start_ns);
        assert!(child.end_ns <= root.end_ns, "child closed before parent");
        assert_eq!(child.attr_u64("inserted"), Some(3));
        assert_eq!(current(), 0, "guard restored the empty context");
    }

    #[test]
    fn disarmed_recorder_records_nothing() {
        let rec = FlightRecorder::with_capacity(256);
        rec.arm(false);
        assert!(rec.start("query.tick", Instant(0)).is_none());
        assert!(rec.snapshot().is_empty());
        rec.arm(true);
        rec.start("query.tick", Instant(0)).unwrap();
        assert_eq!(rec.snapshot().len(), 1);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let rec = FlightRecorder::with_capacity(1); // floors at 64/lane
        let cap = rec.capacity();
        for _ in 0..cap + 10 {
            rec.start("op.select", Instant(0)).unwrap();
        }
        // This thread writes to exactly one lane, so only that lane's
        // slots fill; everything past its capacity evicts.
        let per_lane = cap / rec.lanes.len();
        assert_eq!(rec.dropped_total(), (cap + 10 - per_lane) as u64);
        assert_eq!(rec.snapshot().len(), per_lane);
        rec.clear();
        assert!(rec.snapshot().is_empty());
        assert!(rec.dropped_total() > 0, "clear preserves the drop counter");
    }

    #[test]
    fn explicit_parent_survives_thread_hops() {
        let rec = std::sync::Arc::new(FlightRecorder::with_capacity(256));
        let parent_id = {
            let parent = rec.start("sched.round", Instant(7)).unwrap();
            let id = parent.id();
            let r = std::sync::Arc::clone(&rec);
            std::thread::scope(|s| {
                s.spawn(move || {
                    let job = r.start_with("sched.job", id, Instant(7)).unwrap();
                    let _g = job.enter();
                    r.start("query.tick", Instant(7)).unwrap();
                });
            });
            id
        };
        let spans = rec.snapshot();
        let job = spans.iter().find(|s| s.name == "sched.job").unwrap();
        let tick = spans.iter().find(|s| s.name == "query.tick").unwrap();
        assert_eq!(job.parent, parent_id);
        assert_eq!(tick.parent, job.id);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let rec = FlightRecorder::with_capacity(256);
        {
            let mut s = rec.start("beta.attempt", Instant(2)).unwrap();
            s.attr_str("service", "needs \"escaping\"\\here\n");
            s.attr_u64("ok", 1);
        }
        let json = chrome_trace(&rec.snapshot());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"beta.attempt\""));
        assert!(json.contains("\"cat\":\"beta\""));
        assert!(json.contains("\\\"escaping\\\"\\\\here\\n"));
        assert!(json.contains("\"at\":2"));
        // no raw control characters survive escaping
        assert!(!json.chars().any(|c| (c as u32) < 0x20));
    }

    #[test]
    fn capacity_env_floor_and_defaults() {
        let rec = FlightRecorder::default();
        assert!(rec.capacity() >= DEFAULT_CAPACITY / 16);
        assert!(rec.armed());
        assert!(rec.now_ns() <= rec.now_ns());
    }
}
