//! The telemetry subsystem: metric series, service latency, traces.
//!
//! PR 1's [`crate::metrics`] layer answers "what did this *plan node* do"
//! — per-node counters behind a [`crate::metrics::MetricsSink`]. This
//! module answers the production questions a long-running PEMS is judged
//! by (§5.2's robustness/scalability concerns):
//!
//! * [`registry`] — a lock-cheap [`MetricsRegistry`] of named counters,
//!   gauges and log-linear [`Histogram`]s (p50/p90/p99/max), rendered in
//!   the Prometheus text format by
//!   [`MetricsRegistry::render_prometheus`];
//! * [`sink`] — [`RegistrySink`], bridging per-operator observations into
//!   per-`OpKind` wall-time histograms, tuple counters and β-cache
//!   counters;
//! * [`invoker`] — [`InstrumentedInvoker`], measuring every β service
//!   call (per-service latency histograms, failure counters) and feeding
//!   [`InvocationObserver`]s such as service-health trackers;
//! * [`trace`] — span-style [`TraceEvent`]s (query registered, tick
//!   start/end, invocation, failure) behind a [`TraceSink`], with a JSONL
//!   writer ([`JsonlTrace`]) for machine-readable export;
//! * [`span`] — hierarchical wall-time spans in a bounded in-memory
//!   [`FlightRecorder`] (scheduler round → worker job → query tick →
//!   operator → β call/attempt), exportable as Chrome/Perfetto
//!   `trace.json` via [`span::chrome_trace`].
//!
//! Everything here is optional and composable: executors keep talking to
//! the `MetricsSink`/`Invoker` traits they already know; telemetry attaches
//! by decoration (a `Tee` to a [`RegistrySink`], an [`InstrumentedInvoker`]
//! around the service registry).

pub mod histogram;
pub mod invoker;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;

pub use histogram::Histogram;
pub use invoker::{InstrumentedInvoker, InstrumentedLayer, InvocationObserver};
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use sink::{beta_cache_hit_ratio, RegistrySink};
pub use span::{chrome_trace, ActiveSpan, AttrValue, FlightRecorder, SpanRecord};
pub use trace::{JsonlTrace, MemoryTrace, NoopTrace, TraceEvent, TraceSink};
