//! Structured trace export: span-style events as JSON Lines.
//!
//! Executors emit [`TraceEvent`]s at the interesting edges of a continuous
//! query's life — registration, tick start/end, each β invocation, and
//! failures — into a [`TraceSink`]. [`JsonlTrace`] serialises each event as
//! one JSON object per line (hand-rolled, no external dependencies) with a
//! monotonic `ts_us` timestamp relative to the writer's creation, so traces
//! from one process are totally ordered and machine-mergeable.

use std::io::Write;

use crate::sync::Mutex;
use crate::time::Instant;

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A continuous query was registered with the processor.
    QueryRegistered {
        /// The query's name.
        query: String,
    },
    /// A query's tick began.
    TickStart {
        /// The query's name.
        query: String,
        /// Logical tick instant τ.
        at: Instant,
    },
    /// A query's tick completed.
    TickEnd {
        /// The query's name.
        query: String,
        /// Logical tick instant τ.
        at: Instant,
        /// Wall-clock tick duration in nanoseconds.
        duration_ns: u64,
        /// Tuples inserted into the result this tick.
        inserted: u64,
        /// Tuples deleted from the result this tick.
        deleted: u64,
        /// Invocation errors survived this tick.
        errors: u64,
    },
    /// One β service invocation completed (successfully or not).
    Invocation {
        /// The invoked service's reference.
        service: String,
        /// The prototype invoked.
        prototype: String,
        /// Logical instant τ of the invocation.
        at: Instant,
        /// Wall-clock invocation latency in nanoseconds.
        latency_ns: u64,
        /// Whether the invocation succeeded.
        ok: bool,
    },
    /// A failure (invocation error, tick error) with its message.
    Failure {
        /// What failed — a query or service name.
        scope: String,
        /// Logical instant τ of the failure.
        at: Instant,
        /// Human-readable failure message.
        message: String,
    },
    /// A circuit breaker changed state (closed → open → half-open →
    /// closed edges, resilience layer).
    BreakerTransition {
        /// The guarded service's reference.
        service: String,
        /// Logical instant τ of the transition.
        at: Instant,
        /// State left ("closed", "open", "half_open").
        from: String,
        /// State entered ("closed", "open", "half_open").
        to: String,
    },
}

impl TraceEvent {
    /// The event's type tag as serialised in the `event` JSON field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::QueryRegistered { .. } => "query_registered",
            TraceEvent::TickStart { .. } => "tick_start",
            TraceEvent::TickEnd { .. } => "tick_end",
            TraceEvent::Invocation { .. } => "invocation",
            TraceEvent::Failure { .. } => "failure",
            TraceEvent::BreakerTransition { .. } => "breaker_transition",
        }
    }
}

/// Destination for trace events. Implementations must be cheap and
/// thread-safe: ticks may emit from parallel executor threads.
pub trait TraceSink: Send + Sync {
    /// Consume one event.
    fn emit(&self, event: &TraceEvent);
}

/// The default sink: discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTrace;

impl TraceSink for NoopTrace {
    fn emit(&self, _event: &TraceEvent) {}
}

/// An in-memory sink collecting events (tests, `\metrics`-style tooling).
#[derive(Debug, Default)]
pub struct MemoryTrace {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemoryTrace {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all collected events, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True iff no events were collected.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl TraceSink for MemoryTrace {
    fn emit(&self, event: &TraceEvent) {
        self.events.lock().push(event.clone());
    }
}

/// A [`TraceSink`] writing one JSON object per event, one event per line.
///
/// Schema: every line carries `ts_us` (microseconds since the writer was
/// created, monotonic) and `event` (the [`TraceEvent::kind`] tag); the
/// remaining fields are the event's own. Write errors are silently dropped
/// — telemetry must never fail the query it observes.
pub struct JsonlTrace<W: Write + Send> {
    out: Mutex<W>,
    epoch: std::time::Instant,
}

impl<W: Write + Send> JsonlTrace<W> {
    /// Wrap `out`; the `ts_us` epoch starts now.
    pub fn new(out: W) -> Self {
        JsonlTrace {
            out: Mutex::new(out),
            epoch: std::time::Instant::now(),
        }
    }

    /// Consume the writer, returning the underlying output.
    pub fn into_inner(self) -> W {
        self.out.into_inner()
    }
}

impl<W: Write + Send> TraceSink for JsonlTrace<W> {
    fn emit(&self, event: &TraceEvent) {
        let mut line = String::with_capacity(128);
        line.push('{');
        json_field_u64(&mut line, "ts_us", self.epoch.elapsed().as_micros() as u64);
        json_field_str(&mut line, "event", event.kind());
        match event {
            TraceEvent::QueryRegistered { query } => {
                json_field_str(&mut line, "query", query);
            }
            TraceEvent::TickStart { query, at } => {
                json_field_str(&mut line, "query", query);
                json_field_u64(&mut line, "at", at.0);
            }
            TraceEvent::TickEnd {
                query,
                at,
                duration_ns,
                inserted,
                deleted,
                errors,
            } => {
                json_field_str(&mut line, "query", query);
                json_field_u64(&mut line, "at", at.0);
                json_field_u64(&mut line, "duration_ns", *duration_ns);
                json_field_u64(&mut line, "inserted", *inserted);
                json_field_u64(&mut line, "deleted", *deleted);
                json_field_u64(&mut line, "errors", *errors);
            }
            TraceEvent::Invocation {
                service,
                prototype,
                at,
                latency_ns,
                ok,
            } => {
                json_field_str(&mut line, "service", service);
                json_field_str(&mut line, "prototype", prototype);
                json_field_u64(&mut line, "at", at.0);
                json_field_u64(&mut line, "latency_ns", *latency_ns);
                json_field_raw(&mut line, "ok", if *ok { "true" } else { "false" });
            }
            TraceEvent::Failure { scope, at, message } => {
                json_field_str(&mut line, "scope", scope);
                json_field_u64(&mut line, "at", at.0);
                json_field_str(&mut line, "message", message);
            }
            TraceEvent::BreakerTransition {
                service,
                at,
                from,
                to,
            } => {
                json_field_str(&mut line, "service", service);
                json_field_u64(&mut line, "at", at.0);
                json_field_str(&mut line, "from", from);
                json_field_str(&mut line, "to", to);
            }
        }
        line.push('}');
        line.push('\n');
        let mut out = self.out.lock();
        let _ = out.write_all(line.as_bytes());
    }
}

fn json_field_sep(out: &mut String) {
    if !out.ends_with('{') {
        out.push(',');
    }
}

fn json_field_u64(out: &mut String, key: &str, v: u64) {
    json_field_sep(out);
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

fn json_field_raw(out: &mut String, key: &str, raw: &str) {
    json_field_sep(out);
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(raw);
}

fn json_field_str(out: &mut String, key: &str, v: &str) {
    json_field_sep(out);
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_one_object_per_line() {
        let trace = JsonlTrace::new(Vec::<u8>::new());
        trace.emit(&TraceEvent::QueryRegistered {
            query: "temps".into(),
        });
        trace.emit(&TraceEvent::TickEnd {
            query: "temps".into(),
            at: Instant(3),
            duration_ns: 1200,
            inserted: 2,
            deleted: 0,
            errors: 1,
        });
        trace.emit(&TraceEvent::Invocation {
            service: "sensor01".into(),
            prototype: "getTemperature".into(),
            at: Instant(3),
            latency_ns: 900,
            ok: false,
        });
        let bytes = trace.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"ts_us\":"), "{line}");
        }
        assert!(lines[0].contains("\"event\":\"query_registered\""));
        assert!(lines[1].contains("\"event\":\"tick_end\""));
        assert!(lines[1].contains("\"duration_ns\":1200"));
        assert!(lines[1].contains("\"errors\":1"));
        assert!(lines[2].contains("\"ok\":false"));
        assert!(lines[2].contains("\"service\":\"sensor01\""));
    }

    #[test]
    fn string_escaping() {
        let trace = JsonlTrace::new(Vec::<u8>::new());
        trace.emit(&TraceEvent::Failure {
            scope: "q\"1\"".into(),
            at: Instant(0),
            message: "line1\nline2\tend\\".into(),
        });
        let text = String::from_utf8(trace.into_inner()).unwrap();
        assert!(text.contains(r#""scope":"q\"1\"""#), "{text}");
        assert!(
            text.contains(r#""message":"line1\nline2\tend\\""#),
            "{text}"
        );
    }

    #[test]
    fn memory_trace_collects_in_order() {
        let trace = MemoryTrace::new();
        assert!(trace.is_empty());
        trace.emit(&TraceEvent::TickStart {
            query: "q".into(),
            at: Instant(1),
        });
        trace.emit(&TraceEvent::TickStart {
            query: "q".into(),
            at: Instant(2),
        });
        assert_eq!(trace.len(), 2);
        assert!(
            matches!(&trace.events()[1], TraceEvent::TickStart { at, .. } if *at == Instant(2))
        );
        NoopTrace.emit(&TraceEvent::QueryRegistered { query: "q".into() });
    }
}
