//! Lock-free log-linear histograms.
//!
//! A [`Histogram`] buckets `u64` samples (latencies in nanoseconds, batch
//! sizes, …) into **log-linear** buckets: each power-of-two octave is split
//! into [`SUBS`] linear sub-buckets, bounding the relative quantile error
//! at `1 / SUBS` (12.5%) while keeping the whole table at a fixed
//! [`BUCKET_COUNT`] slots. Recording is a handful of relaxed atomic
//! increments — no locks, no allocation — so histograms can sit on hot
//! paths shared across executor threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave (relative error ≤ 1/SUBS).
pub const SUBS: u64 = 8;

/// log2(SUBS) — samples below `SUBS` get an exact bucket each.
const SUB_BITS: u32 = 3;

/// Total bucket count: the exact linear region plus 61 octaves × SUBS.
pub const BUCKET_COUNT: usize = (SUBS as usize) * 62;

/// Map a sample to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = (msb - SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUBS - 1)) as usize;
    group * SUBS as usize + sub
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` value).
fn bucket_upper_bound(i: usize) -> u64 {
    let subs = SUBS as usize;
    if i < subs {
        return i as u64;
    }
    let group = (i / subs) as u32;
    let sub = (i % subs) as u64;
    let bound = ((SUBS + sub + 1) as u128) << (group - 1);
    u128::min(bound - 1, u64::MAX as u128) as u64
}

/// A fixed-size log-linear histogram with atomic buckets.
///
/// Tracks count, sum, max and the full bucket table; quantiles are
/// estimated from bucket upper bounds (relative error ≤ 12.5%, capped at
/// the exact observed maximum).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    /// Last span id recorded into each bucket (0 = none) — **exemplars**:
    /// a quantile estimate links back to a concrete recorded span tree.
    exemplars: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            exemplars: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record one sample and stamp `span_id` as its bucket's exemplar, so
    /// quantile lookups can link back to the span that produced an
    /// outlier. A `span_id` of 0 records the sample without an exemplar.
    pub fn record_with_exemplar(&self, v: u64, span_id: u64) {
        let idx = bucket_index(v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        if span_id != 0 {
            self.exemplars[idx].store(span_id, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The exemplar span id for the bucket holding the `q`-quantile rank
    /// (`None` when the histogram is empty or no exemplar was stamped
    /// there).
    pub fn exemplar_for_quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                let id = self.exemplars[i].load(Ordering::Relaxed);
                return (id != 0).then_some(id);
            }
        }
        None
    }

    /// Record a [`std::time::Duration`] in nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u128::min(d.as_nanos(), u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wraps on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) from the bucket table.
    ///
    /// Returns the upper bound of the bucket holding the rank-`⌈q·n⌉`
    /// sample, capped at the exact observed [`Histogram::max`]. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return u64::min(bucket_upper_bound(i), self.max());
            }
        }
        self.max()
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Cumulative `(le, count)` pairs for every non-empty bucket, in
    /// ascending `le` order — the Prometheus `_bucket` series (the implicit
    /// `+Inf` bucket is [`Histogram::count`]).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                out.push((bucket_upper_bound(i), cum));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_monotone() {
        // Every sample lands in a bucket whose bounds contain it, and
        // bucket indices never decrease as values grow.
        let mut prev_idx = 0usize;
        for v in (0..10_000u64).chain([1 << 20, 1 << 40, u64::MAX - 1, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i < BUCKET_COUNT, "index {i} out of range for {v}");
            assert!(v <= bucket_upper_bound(i), "{v} above bound of bucket {i}");
            if i > 0 {
                assert!(
                    v > bucket_upper_bound(i - 1),
                    "{v} not above bucket {}'s bound",
                    i - 1
                );
            }
            assert!(i >= prev_idx || v < 10_000, "index regressed at {v}");
            prev_idx = i;
        }
        assert_eq!(bucket_upper_bound(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn exact_for_small_values() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 3, 7] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 16);
        assert_eq!(h.max(), 7);
        assert_eq!(h.p50(), 2); // rank 3 of [0,1,2,3,3,7]
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn quantile_error_is_bounded() {
        // Deterministic pseudo-random samples; histogram quantiles must be
        // within 1/SUBS of the exact order statistics.
        let h = Histogram::new();
        let mut samples: Vec<u64> = (0u64..10_000)
            .map(|i| (i.wrapping_mul(2654435761) % 1_000_000) + 1)
            .collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = samples[((q * samples.len() as f64).ceil() as usize - 1).min(9999)];
            let est = h.quantile(q);
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(
                rel <= 1.0 / SUBS as f64,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert_eq!(h.max(), *samples.last().unwrap());
    }

    #[test]
    fn cumulative_buckets_end_at_count() {
        let h = Histogram::new();
        for v in [5u64, 100, 100, 4096, 1 << 30] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        assert_eq!(buckets.last().unwrap().1, h.count());
        // cumulative counts are non-decreasing, bounds strictly increasing
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn exemplars_link_quantiles_to_spans() {
        let h = Histogram::new();
        assert_eq!(h.exemplar_for_quantile(0.99), None);
        for _ in 0..99 {
            h.record_with_exemplar(10, 7); // fast bucket, exemplar 7
        }
        h.record_with_exemplar(1 << 20, 42); // the outlier
        assert_eq!(h.exemplar_for_quantile(0.5), Some(7));
        assert_eq!(h.exemplar_for_quantile(1.0), Some(42));
        // recording without a span id keeps the previous exemplar
        h.record_with_exemplar(1 << 20, 0);
        assert_eq!(h.exemplar_for_quantile(1.0), Some(42));
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.cumulative_buckets().is_empty());
    }
}
