//! Bridging [`MetricsSink`] observations into a [`MetricsRegistry`].
//!
//! [`RegistrySink`] is the glue between the per-node observation plumbing
//! (PR 1's [`MetricsSink`]) and the named-series world: every
//! [`OpObservation`] becomes per-operator counters (`tuples`, β cache
//! hits/misses, failures) and a wall-time histogram, labelled by operator
//! kind. All series handles are resolved once at construction — recording
//! is a fixed number of relaxed atomic updates, no map lookups.

use std::sync::Arc;

use crate::metrics::{MetricsSink, OpKind, OpObservation};

use super::histogram::Histogram;
use super::registry::{Counter, MetricsRegistry};

/// Per-[`OpKind`] series handles.
struct OpSeries {
    applications: Arc<Counter>,
    tuples_in: Arc<Counter>,
    tuples_out: Arc<Counter>,
    self_time: Arc<Histogram>,
    invocations: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    failures: Arc<Counter>,
    degraded: Arc<Counter>,
    panics: Arc<Counter>,
}

/// A [`MetricsSink`] forwarding every observation into per-operator series
/// of a [`MetricsRegistry`]:
///
/// * `serena_op_applications_total{op}` / `serena_op_tuples_in_total{op}` /
///   `serena_op_tuples_out_total{op}` / `serena_op_failures_total{op}`
/// * `serena_op_self_time_ns{op}` — wall-clock self-time histogram
/// * `serena_beta_invocations_total{op}` /
///   `serena_beta_cache_hits_total{op}` /
///   `serena_beta_cache_misses_total{op}` — β cache behaviour
/// * `serena_beta_degraded_total{op}` — tuples degraded (dropped or
///   null-filled) under a non-fatal [`crate::ops::DegradePolicy`]
/// * `serena_beta_panic_total{op}` — invocations whose service panicked;
///   the panic was contained and surfaced as an error
pub struct RegistrySink {
    per_op: Vec<OpSeries>,
}

impl RegistrySink {
    /// Resolve all per-operator series handles against `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        let per_op = OpKind::ALL
            .iter()
            .map(|op| {
                let name = format!("{op}");
                let labels: [(&str, &str); 1] = [("op", &name)];
                OpSeries {
                    applications: registry.counter("serena_op_applications_total", &labels),
                    tuples_in: registry.counter("serena_op_tuples_in_total", &labels),
                    tuples_out: registry.counter("serena_op_tuples_out_total", &labels),
                    self_time: registry.histogram("serena_op_self_time_ns", &labels),
                    invocations: registry.counter("serena_beta_invocations_total", &labels),
                    cache_hits: registry.counter("serena_beta_cache_hits_total", &labels),
                    cache_misses: registry.counter("serena_beta_cache_misses_total", &labels),
                    failures: registry.counter("serena_op_failures_total", &labels),
                    degraded: registry.counter("serena_beta_degraded_total", &labels),
                    panics: registry.counter("serena_beta_panic_total", &labels),
                }
            })
            .collect();
        RegistrySink { per_op }
    }
}

impl MetricsSink for RegistrySink {
    fn record(&self, obs: &OpObservation) {
        let s = &self.per_op[obs.op.index()];
        s.applications.inc();
        s.tuples_in.add(obs.tuples_in);
        s.tuples_out.add(obs.tuples_out);
        s.self_time.record_duration(obs.elapsed);
        if obs.invocations > 0 {
            s.invocations.add(obs.invocations);
        }
        if obs.cache_hits > 0 {
            s.cache_hits.add(obs.cache_hits);
        }
        if obs.cache_misses > 0 {
            s.cache_misses.add(obs.cache_misses);
        }
        if obs.failures > 0 {
            s.failures.add(obs.failures);
        }
        if obs.degraded > 0 {
            s.degraded.add(obs.degraded);
        }
        if obs.panics > 0 {
            s.panics.add(obs.panics);
        }
    }
}

/// The β-cache hit ratio recorded in `registry` across all operators:
/// `hits / (hits + misses)`, or 0 when no β invocations were observed.
pub fn beta_cache_hit_ratio(registry: &MetricsRegistry) -> f64 {
    let hits = registry.sum_counters("serena_beta_cache_hits_total");
    let misses = registry.sum_counters("serena_beta_cache_misses_total");
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::NodeId;
    use std::time::Duration;

    #[test]
    fn observations_land_in_per_op_series() {
        let registry = MetricsRegistry::new();
        let sink = RegistrySink::new(&registry);

        let mut obs = OpObservation::new(NodeId(2), OpKind::Invoke);
        obs.tuples_in = 3;
        obs.tuples_out = 3;
        obs.invocations = 2;
        obs.cache_hits = 1;
        obs.cache_misses = 2;
        obs.failures = 1;
        obs.degraded = 1;
        obs.panics = 1;
        obs.elapsed = Duration::from_micros(5);
        sink.record(&obs);
        sink.record(&OpObservation::new(NodeId(0), OpKind::Select));

        let op = [("op", "Invoke")];
        assert_eq!(
            registry.counter_value("serena_op_applications_total", &op),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("serena_beta_invocations_total", &op),
            Some(2)
        );
        assert_eq!(
            registry.counter_value("serena_beta_cache_hits_total", &op),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("serena_op_failures_total", &op),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("serena_beta_degraded_total", &op),
            Some(1)
        );
        assert_eq!(
            registry.counter_value("serena_beta_panic_total", &op),
            Some(1)
        );
        let hist = registry.histogram("serena_op_self_time_ns", &op);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), 5_000);
        assert_eq!(
            registry.counter_value("serena_op_applications_total", &[("op", "Select")]),
            Some(1)
        );
        let ratio = beta_cache_hit_ratio(&registry);
        assert!((ratio - 1.0 / 3.0).abs() < 1e-9, "{ratio}");
    }

    #[test]
    fn hit_ratio_zero_when_no_beta_traffic() {
        let registry = MetricsRegistry::new();
        let _sink = RegistrySink::new(&registry);
        assert_eq!(beta_cache_hit_ratio(&registry), 0.0);
    }
}
