//! X-Relations: extended relations (Definition 3).
//!
//! An X-Relation is a *finite set* of tuples over an extended relation
//! schema. Tuples carry coordinates for real attributes only; the schema's
//! δ mapping locates them. Set semantics are enforced: inserting a duplicate
//! tuple is a no-op.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use crate::schema::SchemaRef;
use crate::tuple::Tuple;

/// An extended relation over an [`XSchema`](crate::schema::XSchema) (Definition 3).
#[derive(Clone)]
pub struct XRelation {
    schema: SchemaRef,
    /// Insertion-ordered unique tuples. A parallel hash set provides O(1)
    /// duplicate detection; the `Vec` keeps deterministic iteration order
    /// (important for reproducible experiment output).
    tuples: Vec<Tuple>,
    index: HashSet<Tuple>,
}

impl XRelation {
    /// The empty relation over `schema`.
    pub fn empty(schema: SchemaRef) -> Self {
        XRelation {
            schema,
            tuples: Vec::new(),
            index: HashSet::new(),
        }
    }

    /// Build from tuples, dropping duplicates. Tuple/schema conformance is
    /// *not* checked here; use [`XRelation::try_from_tuples`] for checked
    /// construction.
    pub fn from_tuples(schema: SchemaRef, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut r = XRelation::empty(schema);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Checked construction: every tuple must conform to the schema (arity
    /// and types).
    pub fn try_from_tuples(
        schema: SchemaRef,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, String> {
        let mut r = XRelation::empty(schema);
        for t in tuples {
            r.schema.check_tuple(&t)?;
            r.insert(t);
        }
        Ok(r)
    }

    /// The extended relation schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_ref(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple (set semantics). Returns `true` if newly inserted.
    pub fn insert(&mut self, t: Tuple) -> bool {
        if self.index.insert(t.clone()) {
            self.tuples.push(t);
            true
        } else {
            false
        }
    }

    /// Remove a tuple. Returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if self.index.remove(t) {
            if let Some(pos) = self.tuples.iter().position(|u| u == t) {
                self.tuples.remove(pos);
            }
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.index.contains(t)
    }

    /// Iterate tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Tuples as a slice (insertion order).
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consume into the tuple vector.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Set equality with another relation: same (compatible) schema and the
    /// same tuple set, tolerating attribute-order differences.
    pub fn set_eq(&self, other: &XRelation) -> bool {
        if !self.schema.compatible_with(&other.schema) || self.len() != other.len() {
            return false;
        }
        match self.schema.reorder_map(&other.schema) {
            Some(map) => other
                .iter()
                .all(|t| self.index.contains(&t.project_positions(&map))),
            None => false,
        }
    }

    /// Render as a paper-style table: one column per schema attribute, `*`
    /// in virtual columns (cf. the tables of §1.2).
    pub fn to_table(&self) -> String {
        let schema = &self.schema;
        let mut headers: Vec<String> = schema.attrs().iter().map(|a| a.name.to_string()).collect();
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.len());
        for t in &self.tuples {
            let row: Vec<String> = schema
                .attrs()
                .iter()
                .enumerate()
                .map(|(i, _)| match schema.delta(i) {
                    Some(c) => t[c].to_string(),
                    None => "*".to_string(),
                })
                .collect();
            rows.push(row);
        }
        // column widths
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (h, w) in headers.iter_mut().zip(&widths) {
            *h = format!("{h:<w$}");
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-");
        let mut out = format!("| {} |\n|-{sep}-|\n", headers.join(" | "));
        for row in rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }
}

impl fmt::Debug for XRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XRelation{:?} {{", self.schema)?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl PartialEq for XRelation {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}

impl Eq for XRelation {}

impl<'a> IntoIterator for &'a XRelation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

/// The running example's relations (§1.2 / Example 4), shared by tests,
/// examples and benchmarks.
pub mod examples {
    use super::*;
    use crate::schema::examples as schemas;
    use crate::tuple;

    /// The `contacts` X-Relation of Example 4.
    pub fn contacts() -> XRelation {
        XRelation::try_from_tuples(
            schemas::contacts_schema(),
            vec![
                tuple!["Nicolas", "nicolas@elysee.fr", "email"],
                tuple!["Carla", "carla@elysee.fr", "email"],
                tuple!["Francois", "francois@im.gouv.fr", "jabber"],
            ],
        )
        .expect("tuples conform")
    }

    /// The `cameras` X-Relation (camera/area per the scenario).
    pub fn cameras() -> XRelation {
        XRelation::try_from_tuples(
            schemas::cameras_schema(),
            vec![
                tuple!["camera01", "office"],
                tuple!["camera02", "corridor"],
                tuple!["webcam07", "office"],
            ],
        )
        .expect("tuples conform")
    }

    /// The temperature-sensor table of §1.2.
    pub fn sensors() -> XRelation {
        XRelation::try_from_tuples(
            schemas::sensors_schema(),
            vec![
                tuple!["sensor01", "corridor"],
                tuple!["sensor06", "office"],
                tuple!["sensor07", "office"],
                tuple!["sensor22", "roof"],
            ],
        )
        .expect("tuples conform")
    }
}

#[cfg(test)]
mod tests {
    use super::examples::*;
    use super::*;
    use crate::schema::XSchema;
    use crate::tuple;
    use crate::value::DataType;

    #[test]
    fn set_semantics_dedup() {
        let s = XSchema::builder().real("x", DataType::Int).build().unwrap();
        let mut r = XRelation::empty(s);
        assert!(r.insert(tuple![1]));
        assert!(!r.insert(tuple![1]));
        assert!(r.insert(tuple![2]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&tuple![1]));
        assert!(r.remove(&tuple![1]));
        assert!(!r.remove(&tuple![1]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn checked_construction_rejects_bad_tuples() {
        let s = XSchema::builder().real("x", DataType::Int).build().unwrap();
        assert!(XRelation::try_from_tuples(s.clone(), vec![tuple!["oops"]]).is_err());
        assert!(XRelation::try_from_tuples(s, vec![tuple![1, 2]]).is_err());
    }

    #[test]
    fn example_relations_have_paper_cardinalities() {
        assert_eq!(contacts().len(), 3);
        assert_eq!(cameras().len(), 3);
        assert_eq!(sensors().len(), 4);
    }

    #[test]
    fn table_rendering_shows_stars_for_virtual() {
        let table = contacts().to_table();
        assert!(table.contains("name"));
        assert!(table.contains("text"));
        // the virtual columns render as '*'
        assert!(table.contains("*"));
        assert!(table.contains("nicolas@elysee.fr"));
    }

    #[test]
    fn set_eq_tolerates_attribute_order() {
        let a = XSchema::builder()
            .real("x", DataType::Int)
            .real("y", DataType::Str)
            .build()
            .unwrap();
        let b = XSchema::builder()
            .real("y", DataType::Str)
            .real("x", DataType::Int)
            .build()
            .unwrap();
        let ra = XRelation::from_tuples(a, vec![tuple![1, "p"], tuple![2, "q"]]);
        let rb = XRelation::from_tuples(b, vec![tuple!["q", 2], tuple!["p", 1]]);
        assert!(ra.set_eq(&rb));
        assert_eq!(ra, rb);
    }

    #[test]
    fn set_eq_distinguishes_content() {
        let s = XSchema::builder().real("x", DataType::Int).build().unwrap();
        let a = XRelation::from_tuples(s.clone(), vec![tuple![1]]);
        let b = XRelation::from_tuples(s, vec![tuple![2]]);
        assert!(!a.set_eq(&b));
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let s = XSchema::builder().real("x", DataType::Int).build().unwrap();
        let r = XRelation::from_tuples(s, vec![tuple![3], tuple![1], tuple![2]]);
        let xs: Vec<i64> = r.iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(xs, vec![3, 1, 2]);
    }
}
