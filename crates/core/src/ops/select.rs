//! Selection σ (Table 3(b)).
//!
//! Schema-preserving; the formula may reference only real attributes (the
//! validation lives in [`Formula::validate`]). Tuple semantics:
//! `s = { t | t ∈ r ∧ t ⊨ F }`.

use crate::error::{EvalError, PlanError};
use crate::formula::Formula;
use crate::schema::SchemaRef;
use crate::xrelation::XRelation;

/// Output schema of `σ_F(r)` — the operand schema, after validating `F`.
pub fn select_schema(schema: &SchemaRef, formula: &Formula) -> Result<SchemaRef, PlanError> {
    formula.validate(schema)?;
    Ok(schema.clone())
}

/// `σ_F(r)`.
pub fn select(r: &XRelation, formula: &Formula) -> Result<XRelation, EvalError> {
    let schema = select_schema(&r.schema_ref(), formula)?;
    let compiled = formula.compile(&schema)?;
    let mut out = XRelation::empty(schema);
    for t in r.iter() {
        if compiled.matches(t)? {
            out.insert(t.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use crate::tuple;
    use crate::xrelation::examples::contacts;

    #[test]
    fn q1_selection_from_table_4() {
        // σ_{name <> 'Carla'}(contacts)
        let s = select(&contacts(), &Formula::ne_const("name", "Carla")).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.contains(&tuple!["Nicolas", "nicolas@elysee.fr", "email"]));
        assert!(s.contains(&tuple!["Francois", "francois@im.gouv.fr", "jabber"]));
    }

    #[test]
    fn schema_and_bps_preserved() {
        let s = select(&contacts(), &Formula::eq_const("messenger", "email")).unwrap();
        assert_eq!(s.schema().binding_patterns().len(), 1);
        assert_eq!(s.schema().arity(), 5);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn selection_on_virtual_rejected() {
        let err = select(&contacts(), &Formula::eq_const("sent", true)).unwrap_err();
        assert!(matches!(
            err,
            EvalError::Plan(PlanError::SelectionOnVirtual(_))
        ));
    }

    #[test]
    fn true_false_formulas() {
        assert_eq!(select(&contacts(), &Formula::True).unwrap().len(), 3);
        assert!(select(&contacts(), &Formula::False).unwrap().is_empty());
    }

    #[test]
    fn selection_is_idempotent() {
        let f = Formula::eq_const("messenger", "email");
        let once = select(&contacts(), &f).unwrap();
        let twice = select(&once, &f).unwrap();
        assert_eq!(once, twice);
    }

    #[test]
    fn conjunction_commutes_with_cascade() {
        let f = Formula::ne_const("name", "Carla");
        let g = Formula::eq_const("messenger", "email");
        let combined = select(&contacts(), &f.clone().and(g.clone())).unwrap();
        let cascaded = select(&select(&contacts(), &f).unwrap(), &g).unwrap();
        assert_eq!(combined, cascaded);
    }
}
