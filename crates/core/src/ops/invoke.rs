//! Invocation β (Table 3(f)).
//!
//! The realization operator for the *output attributes of a binding
//! pattern*: `β_bp(r)` invokes `prototype_bp` once per input tuple, on the
//! service referenced by the tuple's `service_bp` attribute, with input
//! parameters projected from the tuple. Every output tuple of the
//! invocation extends (duplicates) the input tuple; zero output tuples drop
//! it. Output attributes become real; binding patterns whose outputs
//! overlap the realized attributes are eliminated.
//!
//! Invocations of *active* binding patterns are recorded in the query's
//! [`ActionSet`] (Definition 8).

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::action::{Action, ActionSet};
use crate::binding::BindingPattern;
use crate::error::{EvalError, PlanError};
use crate::schema::{AttrKind, Attribute, SchemaRef, XSchema};
use crate::service::Invoker;
use crate::time::Instant;
use crate::tuple::Tuple;
use crate::value::ServiceRef;
use crate::xrelation::XRelation;

/// Resolve the binding pattern named by `(prototype, service_attr)` on
/// `schema` and derive the output schema of `β_bp(r)`.
///
/// Requires `schema(Input_ψ) ⊆ realSchema(R)` — invoke realization
/// operators (α or an upstream β) first otherwise.
pub fn invoke_schema(
    schema: &XSchema,
    prototype: &str,
    service_attr: &str,
) -> Result<(SchemaRef, BindingPattern), PlanError> {
    let bp = schema
        .find_bp_exact(prototype, service_attr)
        .cloned()
        .ok_or_else(|| PlanError::UnknownBindingPattern {
            prototype: prototype.to_string(),
        })?;
    // All prototype inputs must be real.
    for a in bp.prototype().input().names() {
        if !schema.is_real(a.as_str()) {
            return Err(PlanError::InvokeInputNotReal {
                prototype: prototype.to_string(),
                attr: a.clone(),
            });
        }
    }
    let outputs: Vec<&str> = bp
        .prototype()
        .output()
        .names()
        .map(|a| a.as_str())
        .collect();
    let attrs: Vec<Attribute> = schema
        .attrs()
        .iter()
        .map(|a| {
            if outputs.contains(&a.name.as_str()) {
                Attribute {
                    name: a.name.clone(),
                    ty: a.ty,
                    kind: AttrKind::Real,
                }
            } else {
                a.clone()
            }
        })
        .collect();
    // BP(S): patterns whose outputs stay within the remaining virtuals.
    let bps = schema
        .binding_patterns()
        .iter()
        .filter(|other| {
            other
                .prototype()
                .output()
                .names()
                .all(|a| !outputs.contains(&a.as_str()) && schema.is_virtual(a.as_str()))
        })
        .cloned()
        .collect();
    let out = XSchema::from_attrs(attrs, bps).map_err(PlanError::Schema)?;
    Ok((out, bp))
}

/// Running tallies of one β application, consumed by the metrics layer
/// ([`crate::metrics`]): how many live invocations were performed and how
/// many of them failed. The plain [`invoke`]/[`invoke_delta`] entry points
/// discard the tally; the instrumented executor reads it back into an
/// [`crate::metrics::OpObservation`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InvokeTally {
    /// Invocations performed (one per input tuple reaching the invoker).
    pub invocations: u64,
    /// Invocations that returned an error.
    pub failures: u64,
    /// Failed tuples degraded (dropped or null-filled) instead of failing
    /// the whole query, per the active [`DegradePolicy`].
    pub degraded: u64,
    /// Invocations whose service implementation panicked. The panic was
    /// contained ([`EvalError::Panicked`]) and also counts as a failure.
    pub panics: u64,
}

/// How β/βˢ reacts when one tuple's invocation fails — the graceful
/// degradation knob of the resilience layer.
///
/// The paper's services are "dynamic, volatile" (§2.1); with the default
/// [`DegradePolicy::FailQuery`], one dead sensor makes a whole one-shot
/// query error out (and surfaces a per-tick error in continuous mode). The
/// other policies trade completeness for availability: the query keeps its
/// healthy tuples and the failure is only visible in the `degraded`
/// counters ([`InvokeTally`], [`NodeStats`](crate::metrics::NodeStats)).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum DegradePolicy {
    /// A failed invocation fails the query (one-shot) or surfaces as a
    /// tick error (continuous) — the historical behaviour, and the default.
    #[default]
    FailQuery,
    /// Drop the failed input tuple: it contributes no output rows, the
    /// rest of the batch proceeds.
    DropTuple,
    /// Keep the failed input tuple, extending it with each output
    /// attribute's type-default filler value
    /// ([`DataType::default_value`](crate::value::DataType::default_value)).
    NullFill,
}

impl DegradePolicy {
    /// Whether a failed invocation under this policy aborts/errors the
    /// query (i.e. the policy performs no degradation).
    pub fn fails_query(&self) -> bool {
        matches!(self, DegradePolicy::FailQuery)
    }
}

/// `β_bp(r)`: evaluate the invocation operator at instant `at`, resolving
/// services through `invoker` and recording active invocations in
/// `actions`.
pub fn invoke(
    r: &XRelation,
    prototype: &str,
    service_attr: &str,
    invoker: &dyn Invoker,
    at: Instant,
    actions: &mut ActionSet,
) -> Result<XRelation, EvalError> {
    invoke_observed(
        r,
        prototype,
        service_attr,
        invoker,
        at,
        actions,
        &mut InvokeTally::default(),
    )
}

/// [`invoke`], additionally reporting invocation counts through `tally`.
/// The tally is updated even when the result is an error, so instrumented
/// callers can record partial progress before propagating the failure.
#[allow(clippy::too_many_arguments)]
pub fn invoke_observed(
    r: &XRelation,
    prototype: &str,
    service_attr: &str,
    invoker: &dyn Invoker,
    at: Instant,
    actions: &mut ActionSet,
    tally: &mut InvokeTally,
) -> Result<XRelation, EvalError> {
    let recipe = InvokeRecipe::prepare(r.schema(), prototype, service_attr)?;
    let tuples = recipe.invoke_serial(
        r.iter(),
        invoker,
        at,
        actions,
        tally,
        DegradePolicy::FailQuery,
    )?;
    Ok(XRelation::from_tuples(recipe.out_schema().clone(), tuples))
}

/// Where one slot of a β output tuple comes from: carried over from the
/// input tuple, or produced by the invocation result.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Coordinate in the input tuple.
    Carry(usize),
    /// Index in the invocation result tuple (`Output_ψ` order).
    Fresh(usize),
}

/// Everything `β_bp(r)` needs per call, resolved **once** against the input
/// schema: the input-projection coordinates, the service-reference
/// coordinate, and the output-assembly recipe. Historically all of this was
/// re-derived on every δ-batch of every tick; an `InvokeRecipe` is computed
/// at plan-compile time and reused by both the one-shot physical executor
/// and the continuous executor.
#[derive(Debug, Clone)]
pub struct InvokeRecipe {
    bp: BindingPattern,
    out_schema: SchemaRef,
    /// Prototype input attributes, as input-tuple coordinates (Input_ψ order).
    input_coords: Vec<usize>,
    /// Coordinate of the service-reference attribute in the input tuple.
    service_coord: usize,
    /// One entry per real attribute of the output schema.
    slots: Vec<Slot>,
}

/// The raw outcome of one prepared-and-invoked input tuple, produced by
/// [`InvokeRecipe::call_batch`]: the resolved service reference, the
/// projected input (both needed to record an [`Action`]) and the
/// invocation's result.
#[derive(Debug)]
pub struct TupleCall {
    /// The service the tuple's service attribute referenced.
    pub sref: ServiceRef,
    /// The prototype input projected from the tuple.
    pub input: Tuple,
    /// What the invoker returned.
    pub result: Result<Vec<Tuple>, EvalError>,
}

impl InvokeRecipe {
    /// Resolve `(prototype, service_attr)` on `in_schema` and pre-compute
    /// the full invocation recipe (schema derivation + coordinate maps).
    pub fn prepare(
        in_schema: &XSchema,
        prototype: &str,
        service_attr: &str,
    ) -> Result<InvokeRecipe, PlanError> {
        let (out_schema, bp) = invoke_schema(in_schema, prototype, service_attr)?;
        Ok(InvokeRecipe::from_parts(in_schema, out_schema, bp))
    }

    /// Build a recipe from an already-derived output schema and binding
    /// pattern (the pieces [`invoke_schema`] returns).
    pub fn from_parts(in_schema: &XSchema, out_schema: SchemaRef, bp: BindingPattern) -> Self {
        let proto = bp.prototype();
        let input_coords: Vec<usize> = proto
            .input()
            .names()
            .map(|a| in_schema.coord_of(a.as_str()).expect("validated real"))
            .collect();
        let service_coord = in_schema
            .coord_of(bp.service_attr().as_str())
            .expect("validated real");
        let slots: Vec<Slot> = out_schema
            .attrs()
            .iter()
            .filter(|a| a.is_real())
            .map(|a| match proto.output().index_of(a.name.as_str()) {
                Some(i) => Slot::Fresh(i),
                None => Slot::Carry(in_schema.coord_of(a.name.as_str()).expect("was real")),
            })
            .collect();
        InvokeRecipe {
            bp,
            out_schema,
            input_coords,
            service_coord,
            slots,
        }
    }

    /// The derived output schema of `β_bp(r)`.
    pub fn out_schema(&self) -> &SchemaRef {
        &self.out_schema
    }

    /// The resolved binding pattern.
    pub fn binding_pattern(&self) -> &BindingPattern {
        &self.bp
    }

    /// Extract the service reference and projected prototype input from one
    /// input tuple. Fails (without invoking anything) when the service
    /// attribute does not hold a service reference.
    pub fn prepare_call(&self, t: &Tuple) -> Result<(ServiceRef, Tuple), EvalError> {
        let sref = t[self.service_coord].as_service_ref().ok_or_else(|| {
            EvalError::Value(format!(
                "attribute `{}` does not hold a service reference: {}",
                self.bp.service_attr(),
                t[self.service_coord]
            ))
        })?;
        Ok((sref, t.project_positions(&self.input_coords)))
    }

    /// Extend `out` with one output tuple per invocation result row,
    /// duplicating the input tuple per the pre-resolved slot recipe.
    pub fn assemble_into(&self, t: &Tuple, results: &[Tuple], out: &mut Vec<Tuple>) {
        for o in results {
            let new_t: Tuple = self
                .slots
                .iter()
                .map(|s| match s {
                    Slot::Carry(c) => t[*c].clone(),
                    Slot::Fresh(i) => o[*i].clone(),
                })
                .collect();
            out.push(new_t);
        }
    }

    /// Prepare and invoke every tuple of the batch, fanning the live
    /// invocations across at most `parallelism` worker threads (serial when
    /// `parallelism <= 1`). The returned outcomes are **in input order**:
    /// entry `i` belongs to `tuples[i]`. A `Err` entry means the tuple's
    /// service reference could not be extracted (nothing was invoked); an
    /// `Ok` entry carries the invocation's own result.
    ///
    /// Every tuple is invoked regardless of other tuples' failures; callers
    /// wanting serial stop-at-first-failure semantics fold the outcomes in
    /// order (see [`InvokeRecipe::invoke_batch_observed`]).
    pub fn call_batch(
        &self,
        tuples: &[&Tuple],
        invoker: &dyn Invoker,
        at: Instant,
        parallelism: usize,
    ) -> Vec<Result<TupleCall, EvalError>> {
        let call_one = |t: &Tuple| -> Result<TupleCall, EvalError> {
            let (sref, input) = self.prepare_call(t)?;
            // Contain panics here rather than letting them unwind through a
            // scoped worker: a panicking service must surface as
            // `EvalError::Panicked`, never poison the β pool or the process.
            let result =
                crate::service::invoke_contained(invoker, self.bp.prototype(), &sref, &input, at);
            Ok(TupleCall {
                sref,
                input,
                result,
            })
        };
        let workers = parallelism.min(tuples.len());
        if workers <= 1 {
            return tuples.iter().map(|t| call_one(t)).collect();
        }
        // Bounded worker pool over a shared cursor: each worker claims the
        // next unclaimed index, invokes outside any lock, and writes its
        // outcome back into the tuple's slot — results stay in input order.
        let mut results: Vec<Option<Result<TupleCall, EvalError>>> = Vec::new();
        results.resize_with(tuples.len(), || None);
        let slots = crate::sync::Mutex::new(&mut results);
        let cursor = AtomicUsize::new(0);
        // Span context is thread-local; capture the operator span here so
        // β spans recorded on worker threads still nest under it.
        let parent_span = crate::telemetry::span::current();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let _in_span = crate::telemetry::span::enter(parent_span);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= tuples.len() {
                            break;
                        }
                        let outcome = call_one(tuples[i]);
                        slots.lock()[i] = Some(outcome);
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every index was claimed by a worker"))
            .collect()
    }

    /// One filler row for [`DegradePolicy::NullFill`]: the prototype's
    /// output attributes, each holding its type's default value.
    pub fn null_fill_row(&self) -> Tuple {
        self.bp
            .prototype()
            .output()
            .attrs()
            .map(|(_, ty)| ty.default_value())
            .collect()
    }

    /// Serial β over `tuples` with the paper's §3.2 one-shot semantics:
    /// tuples are processed in order, active invocations are recorded in
    /// `actions` *before* invoking, and — under [`DegradePolicy::FailQuery`]
    /// — the first failure aborts the batch (the tally still counts the
    /// failed attempt). Under the degrading policies a failed tuple is
    /// dropped or null-filled instead and the batch continues.
    #[allow(clippy::too_many_arguments)]
    pub fn invoke_serial<'a>(
        &self,
        tuples: impl Iterator<Item = &'a Tuple>,
        invoker: &dyn Invoker,
        at: Instant,
        actions: &mut ActionSet,
        tally: &mut InvokeTally,
        degrade: DegradePolicy,
    ) -> Result<Vec<Tuple>, EvalError> {
        let filler = matches!(degrade, DegradePolicy::NullFill).then(|| self.null_fill_row());
        let mut out = Vec::new();
        for t in tuples {
            let (sref, input) = self.prepare_call(t)?;
            if self.bp.is_active() {
                actions.record(Action::new(self.bp.clone(), sref.clone(), input.clone()));
            }
            tally.invocations += 1;
            match crate::service::invoke_contained(invoker, self.bp.prototype(), &sref, &input, at)
            {
                Ok(results) => self.assemble_into(t, &results, &mut out),
                Err(e) => {
                    tally.failures += 1;
                    if matches!(e, EvalError::Panicked { .. }) {
                        tally.panics += 1;
                    }
                    match (degrade, &filler) {
                        (DegradePolicy::FailQuery, _) => return Err(e),
                        (DegradePolicy::DropTuple, _) => tally.degraded += 1,
                        (_, Some(row)) => {
                            tally.degraded += 1;
                            self.assemble_into(t, std::slice::from_ref(row), &mut out);
                        }
                        (DegradePolicy::NullFill, None) => unreachable!("filler precomputed"),
                    }
                }
            }
        }
        Ok(out)
    }

    /// β over a batch with observable behaviour **identical** to
    /// [`InvokeRecipe::invoke_serial`] — same output tuples in the same
    /// order, same action set, same tally, same first-failure error — but
    /// with the live invocations fanned across up to `parallelism` worker
    /// threads. With `parallelism <= 1` this *is* the serial path.
    ///
    /// On a [`DegradePolicy::FailQuery`] failure the parallel path may have
    /// invoked tuples past the failing one (they were already in flight);
    /// their results are discarded and neither the action set nor the tally
    /// observes them, exactly as if execution had stopped at the failure.
    #[allow(clippy::too_many_arguments)]
    pub fn invoke_batch_observed(
        &self,
        tuples: &[&Tuple],
        invoker: &dyn Invoker,
        at: Instant,
        parallelism: usize,
        actions: &mut ActionSet,
        tally: &mut InvokeTally,
        degrade: DegradePolicy,
    ) -> Result<Vec<Tuple>, EvalError> {
        if parallelism <= 1 {
            return self.invoke_serial(
                tuples.iter().copied(),
                invoker,
                at,
                actions,
                tally,
                degrade,
            );
        }
        let filler = matches!(degrade, DegradePolicy::NullFill).then(|| self.null_fill_row());
        let outcomes = self.call_batch(tuples, invoker, at, parallelism);
        let mut out = Vec::new();
        for (t, outcome) in tuples.iter().zip(outcomes) {
            let call = outcome?;
            if self.bp.is_active() {
                actions.record(Action::new(self.bp.clone(), call.sref, call.input));
            }
            tally.invocations += 1;
            match call.result {
                Ok(results) => self.assemble_into(t, &results, &mut out),
                Err(e) => {
                    tally.failures += 1;
                    if matches!(e, EvalError::Panicked { .. }) {
                        tally.panics += 1;
                    }
                    match (degrade, &filler) {
                        (DegradePolicy::FailQuery, _) => return Err(e),
                        (DegradePolicy::DropTuple, _) => tally.degraded += 1,
                        (_, Some(row)) => {
                            tally.degraded += 1;
                            self.assemble_into(t, std::slice::from_ref(row), &mut out);
                        }
                        (DegradePolicy::NullFill, None) => unreachable!("filler precomputed"),
                    }
                }
            }
        }
        Ok(out)
    }
}

/// The tuple-level core of β, shared with the continuous executor (§4.2:
/// in continuous mode "a binding pattern is actually invoked only for newly
/// inserted tuples"): invoke `bp` for each tuple of `tuples` (over
/// `in_schema`) and return the extended tuples over `out_schema`.
#[allow(clippy::too_many_arguments)]
pub fn invoke_delta<'a>(
    in_schema: &XSchema,
    out_schema: &XSchema,
    bp: &BindingPattern,
    tuples: impl Iterator<Item = &'a Tuple>,
    invoker: &dyn Invoker,
    at: Instant,
    actions: &mut ActionSet,
) -> Result<Vec<Tuple>, EvalError> {
    invoke_delta_observed(
        in_schema,
        out_schema,
        bp,
        tuples,
        invoker,
        at,
        actions,
        &mut InvokeTally::default(),
    )
}

/// [`invoke_delta`], additionally reporting invocation counts through
/// `tally` (updated even on error).
#[allow(clippy::too_many_arguments)]
pub fn invoke_delta_observed<'a>(
    in_schema: &XSchema,
    out_schema: &XSchema,
    bp: &BindingPattern,
    tuples: impl Iterator<Item = &'a Tuple>,
    invoker: &dyn Invoker,
    at: Instant,
    actions: &mut ActionSet,
    tally: &mut InvokeTally,
) -> Result<Vec<Tuple>, EvalError> {
    let recipe =
        InvokeRecipe::from_parts(in_schema, SchemaRef::new(out_schema.clone()), bp.clone());
    recipe.invoke_serial(
        tuples,
        invoker,
        at,
        actions,
        tally,
        DegradePolicy::FailQuery,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attr;
    use crate::formula::Formula;
    use crate::ops::{assign, select, AssignSource};
    use crate::service::fixtures::example_registry;
    use crate::tuple;
    use crate::value::Value;
    use crate::xrelation::examples::{cameras, contacts, sensors};

    #[test]
    fn passive_invocation_realizes_temperature() {
        let reg = example_registry();
        let mut actions = ActionSet::new();
        let out = invoke(
            &sensors(),
            "getTemperature",
            "sensor",
            &reg,
            Instant(3),
            &mut actions,
        )
        .unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.schema().is_real("temperature"));
        assert!(out.schema().binding_patterns().is_empty());
        // passive prototype → empty action set (Example 7's reasoning)
        assert!(actions.is_empty());
        // deterministic at the instant
        let mut actions2 = ActionSet::new();
        let out2 = invoke(
            &sensors(),
            "getTemperature",
            "sensor",
            &reg,
            Instant(3),
            &mut actions2,
        )
        .unwrap();
        assert_eq!(out, out2);
    }

    #[test]
    fn active_invocation_records_actions_q1() {
        // Q1 = β_{sendMessage[messenger]}(α_{text:='Bonjour!'}(σ_{name<>'Carla'}(contacts)))
        let reg = example_registry();
        let step1 = select(&contacts(), &Formula::ne_const("name", "Carla")).unwrap();
        let step2 = assign(&step1, &attr("text"), &AssignSource::constant("Bonjour!")).unwrap();
        let mut actions = ActionSet::new();
        let out = invoke(
            &step2,
            "sendMessage",
            "messenger",
            &reg,
            Instant::ZERO,
            &mut actions,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.schema().is_real("sent"));
        // Example 6's action set for Q1:
        let rendered: Vec<String> = actions.iter().map(|a| a.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "(sendMessage[messenger], email, (nicolas@elysee.fr, Bonjour!))",
                "(sendMessage[messenger], jabber, (francois@im.gouv.fr, Bonjour!))",
            ]
        );
    }

    #[test]
    fn input_must_be_real() {
        // sendMessage needs `text` real; contacts has it virtual
        let reg = example_registry();
        let mut actions = ActionSet::new();
        let err = invoke(
            &contacts(),
            "sendMessage",
            "messenger",
            &reg,
            Instant::ZERO,
            &mut actions,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            EvalError::Plan(PlanError::InvokeInputNotReal { .. })
        ));
    }

    #[test]
    fn unknown_bp_rejected() {
        let reg = example_registry();
        let mut actions = ActionSet::new();
        assert!(matches!(
            invoke(
                &contacts(),
                "takePhoto",
                "camera",
                &reg,
                Instant::ZERO,
                &mut actions
            ),
            Err(EvalError::Plan(PlanError::UnknownBindingPattern { .. }))
        ));
        assert!(matches!(
            invoke(
                &contacts(),
                "sendMessage",
                "name",
                &reg,
                Instant::ZERO,
                &mut actions
            ),
            Err(EvalError::Plan(PlanError::UnknownBindingPattern { .. }))
        ));
    }

    #[test]
    fn chained_invocations_check_then_take_photo() {
        // β_{takePhoto}(β_{checkPhoto}(cameras)): checkPhoto realizes
        // quality+delay; takePhoto's input (area, quality) is then real.
        let reg = example_registry();
        let mut actions = ActionSet::new();
        let checked = invoke(
            &cameras(),
            "checkPhoto",
            "camera",
            &reg,
            Instant(1),
            &mut actions,
        )
        .unwrap();
        assert!(checked.schema().is_real("quality"));
        // takePhoto survives checkPhoto's realization (photo still virtual)
        assert_eq!(checked.schema().binding_patterns().len(), 1);
        let photos = invoke(
            &checked,
            "takePhoto",
            "camera",
            &reg,
            Instant(1),
            &mut actions,
        )
        .unwrap();
        assert_eq!(photos.len(), 3);
        assert!(photos.schema().is_real("photo"));
        assert!(photos.schema().binding_patterns().is_empty());
        // both prototypes passive → no actions
        assert!(actions.is_empty());
        for t in photos.iter() {
            let photo = photos.schema().project_tuple_attr(t, "photo").unwrap();
            assert!(matches!(photo, Value::Blob(_)));
        }
    }

    #[test]
    fn zero_result_invocation_drops_tuple() {
        use crate::prototype::examples as protos;
        use crate::service::{FnService, StaticRegistry};
        use std::sync::Arc;
        let reg = StaticRegistry::new();
        // a sensor that never answers (empty relation result)
        reg.register(
            "mute",
            Arc::new(FnService::new(
                vec![protos::get_temperature()],
                |_, _, _| Ok(vec![]),
            )),
        );
        let schema = crate::schema::examples::sensors_schema();
        let r = XRelation::from_tuples(schema, vec![tuple!["mute", "cave"]]);
        let mut actions = ActionSet::new();
        let out = invoke(
            &r,
            "getTemperature",
            "sensor",
            &reg,
            Instant::ZERO,
            &mut actions,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn multi_result_invocation_duplicates_tuple() {
        use crate::prototype::examples as protos;
        use crate::service::{FnService, StaticRegistry};
        use std::sync::Arc;
        let reg = StaticRegistry::new();
        // a sensor reporting two readings at once
        reg.register(
            "twin",
            Arc::new(FnService::new(
                vec![protos::get_temperature()],
                |_, _, _| {
                    Ok(vec![
                        Tuple::new(vec![Value::Real(20.0)]),
                        Tuple::new(vec![Value::Real(21.0)]),
                    ])
                },
            )),
        );
        let schema = crate::schema::examples::sensors_schema();
        let r = XRelation::from_tuples(schema, vec![tuple!["twin", "lab"]]);
        let mut actions = ActionSet::new();
        let out = invoke(
            &r,
            "getTemperature",
            "sensor",
            &reg,
            Instant::ZERO,
            &mut actions,
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple!["twin", "lab", 20.0]));
        assert!(out.contains(&tuple!["twin", "lab", 21.0]));
    }

    /// Registry where `sensor06` always fails; other sensors answer normally.
    fn flaky_registry() -> crate::service::StaticRegistry {
        use crate::prototype::examples as protos;
        use crate::service::FnService;
        use std::sync::Arc;
        let reg = example_registry();
        reg.register(
            "sensor06",
            Arc::new(FnService::new(
                vec![protos::get_temperature()],
                |_, _, _| Err("sensor06 is on fire".to_string()),
            )),
        );
        reg
    }

    fn invoke_degraded(degrade: DegradePolicy) -> (Result<Vec<Tuple>, EvalError>, InvokeTally) {
        let reg = flaky_registry();
        let r = sensors();
        let recipe = InvokeRecipe::prepare(r.schema(), "getTemperature", "sensor").unwrap();
        let mut actions = ActionSet::new();
        let mut tally = InvokeTally::default();
        let out = recipe.invoke_serial(
            r.iter(),
            &reg,
            Instant(3),
            &mut actions,
            &mut tally,
            degrade,
        );
        (out, tally)
    }

    #[test]
    fn fail_query_policy_propagates_error() {
        let (out, tally) = invoke_degraded(DegradePolicy::FailQuery);
        assert!(matches!(out, Err(EvalError::InvocationFailed { .. })));
        assert_eq!(tally.failures, 1);
        assert_eq!(tally.degraded, 0);
    }

    #[test]
    fn drop_tuple_policy_keeps_healthy_tuples() {
        let (out, tally) = invoke_degraded(DegradePolicy::DropTuple);
        let out = out.unwrap();
        assert_eq!(out.len(), 3); // 4 sensors, one dropped
        assert_eq!(tally.invocations, 4);
        assert_eq!(tally.failures, 1);
        assert_eq!(tally.degraded, 1);
    }

    #[test]
    fn null_fill_policy_fills_type_defaults() {
        let (out, tally) = invoke_degraded(DegradePolicy::NullFill);
        let out = out.unwrap();
        assert_eq!(out.len(), 4); // every input tuple survives
        assert_eq!(tally.failures, 1);
        assert_eq!(tally.degraded, 1);
        // the failed sensor's temperature slot holds Real's default
        let filled: Vec<&Tuple> = out
            .iter()
            .filter(|t| {
                t[0].as_service_ref()
                    .is_some_and(|s| s.as_str() == "sensor06")
            })
            .collect();
        assert_eq!(filled.len(), 1);
        assert_eq!(filled[0][2], Value::Real(0.0));
    }

    #[test]
    fn degraded_batches_match_across_parallelism() {
        for degrade in [DegradePolicy::DropTuple, DegradePolicy::NullFill] {
            let reg = flaky_registry();
            let r = sensors();
            let recipe = InvokeRecipe::prepare(r.schema(), "getTemperature", "sensor").unwrap();
            let tuples: Vec<&Tuple> = r.iter().collect();
            let mut outs = Vec::new();
            for parallelism in [1usize, 8] {
                let mut actions = ActionSet::new();
                let mut tally = InvokeTally::default();
                let out = recipe
                    .invoke_batch_observed(
                        &tuples,
                        &reg,
                        Instant(3),
                        parallelism,
                        &mut actions,
                        &mut tally,
                        degrade,
                    )
                    .unwrap();
                assert_eq!(tally.degraded, 1);
                outs.push(out);
            }
            assert_eq!(outs[0], outs[1], "parallel path diverged for {degrade:?}");
        }
    }

    /// Registry where `sensor06` panics on every call; other sensors answer
    /// normally.
    fn panicky_registry() -> crate::service::StaticRegistry {
        let reg = example_registry();
        reg.register("sensor06", crate::service::fixtures::panicking_sensor());
        reg
    }

    /// Run `f` with the default panic hook silenced, restoring it after.
    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn panicking_service_is_contained_and_counted() {
        let reg = panicky_registry();
        let r = sensors();
        let recipe = InvokeRecipe::prepare(r.schema(), "getTemperature", "sensor").unwrap();
        let tuples: Vec<&Tuple> = r.iter().collect();
        quiet_panics(|| {
            // FailQuery: the contained panic is the query's error
            for parallelism in [1usize, 8] {
                let mut actions = ActionSet::new();
                let mut tally = InvokeTally::default();
                let err = recipe
                    .invoke_batch_observed(
                        &tuples,
                        &reg,
                        Instant(3),
                        parallelism,
                        &mut actions,
                        &mut tally,
                        DegradePolicy::FailQuery,
                    )
                    .unwrap_err();
                assert!(
                    matches!(err, EvalError::Panicked { ref service, .. } if service == "sensor06"),
                    "workers={parallelism}: {err:?}"
                );
                assert_eq!(tally.panics, 1, "workers={parallelism}");
                assert_eq!(tally.failures, 1, "workers={parallelism}");
            }
            // DropTuple: the panicking tuple degrades, the rest survive,
            // and the parallel pool stays usable for a second batch
            for parallelism in [1usize, 8] {
                let mut actions = ActionSet::new();
                let mut tally = InvokeTally::default();
                let out = recipe
                    .invoke_batch_observed(
                        &tuples,
                        &reg,
                        Instant(3),
                        parallelism,
                        &mut actions,
                        &mut tally,
                        DegradePolicy::DropTuple,
                    )
                    .unwrap();
                assert_eq!(out.len(), 3, "workers={parallelism}");
                assert_eq!(tally.panics, 1);
                assert_eq!(tally.degraded, 1);
                // pool reuse after a contained panic: same call again
                let mut tally2 = InvokeTally::default();
                let out2 = recipe
                    .invoke_batch_observed(
                        &tuples,
                        &reg,
                        Instant(3),
                        parallelism,
                        &mut actions,
                        &mut tally2,
                        DegradePolicy::DropTuple,
                    )
                    .unwrap();
                assert_eq!(out, out2);
            }
        });
    }

    #[test]
    fn panic_reason_carries_string_payload() {
        let reg = panicky_registry();
        let r = sensors();
        let recipe = InvokeRecipe::prepare(r.schema(), "getTemperature", "sensor").unwrap();
        let tuples: Vec<&Tuple> = r.iter().collect();
        let outcomes = quiet_panics(|| recipe.call_batch(&tuples, &reg, Instant(1), 8));
        let panicked: Vec<&EvalError> = outcomes
            .iter()
            .filter_map(|o| o.as_ref().ok())
            .filter_map(|c| c.result.as_ref().err())
            .filter(|e| matches!(e, EvalError::Panicked { .. }))
            .collect();
        assert_eq!(panicked.len(), 1);
        assert!(panicked[0].to_string().contains("sensor firmware bug"));
    }

    #[test]
    fn unknown_service_reference_fails_eval() {
        let reg = example_registry();
        let schema = crate::schema::examples::sensors_schema();
        let r = XRelation::from_tuples(schema, vec![tuple!["sensor99", "void"]]);
        let mut actions = ActionSet::new();
        let err = invoke(
            &r,
            "getTemperature",
            "sensor",
            &reg,
            Instant::ZERO,
            &mut actions,
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::UnknownService { .. }));
    }
}
