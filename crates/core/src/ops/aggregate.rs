//! Aggregation γ — **extension beyond the paper**.
//!
//! §1.2 motivates queries that "compute a mean temperature for a given
//! location", but the Serena algebra of §3 defines no aggregate operator.
//! We provide a standard grouping operator as a clearly-flagged extension:
//! it participates in plans and the continuous executor, but is excluded
//! from the Table 5 rewrite-rule reproduction and from the equivalence
//! property tests.
//!
//! Semantics: group the operand by a list of *real* attributes and compute
//! aggregates over real attributes. The output schema contains only the
//! group attributes and the aggregate columns — all real, no virtual
//! attributes, no binding patterns (aggregation collapses tuple identity,
//! so per-tuple service references are no longer meaningful).

use std::collections::HashMap;

use crate::attr::AttrName;
use crate::error::{EvalError, PlanError};
use crate::schema::{Attribute, SchemaRef, XSchema};
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use crate::xrelation::XRelation;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFun {
    /// Row count (argument attribute ignored for counting semantics but
    /// kept for naming).
    Count,
    /// Sum over INTEGER/REAL.
    Sum,
    /// Arithmetic mean over INTEGER/REAL; result is REAL.
    Avg,
    /// Minimum (any ordered type).
    Min,
    /// Maximum (any ordered type).
    Max,
}

impl AggFun {
    fn name(&self) -> &'static str {
        match self {
            AggFun::Count => "count",
            AggFun::Sum => "sum",
            AggFun::Avg => "avg",
            AggFun::Min => "min",
            AggFun::Max => "max",
        }
    }

    fn output_type(&self, input: DataType) -> Result<DataType, PlanError> {
        match self {
            AggFun::Count => Ok(DataType::Int),
            AggFun::Avg => match input {
                DataType::Int | DataType::Real => Ok(DataType::Real),
                other => Err(PlanError::Aggregate(format!(
                    "avg requires a numeric attribute, got {other}"
                ))),
            },
            AggFun::Sum => match input {
                DataType::Int => Ok(DataType::Int),
                DataType::Real => Ok(DataType::Real),
                other => Err(PlanError::Aggregate(format!(
                    "sum requires a numeric attribute, got {other}"
                ))),
            },
            AggFun::Min | AggFun::Max => {
                if input.is_ordered() {
                    Ok(input)
                } else {
                    Err(PlanError::Aggregate(format!(
                        "min/max require an ordered type, got {input}"
                    )))
                }
            }
        }
    }
}

/// One aggregate column: `fun(attr) AS name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggSpec {
    /// Function to apply.
    pub fun: AggFun,
    /// Real attribute to aggregate.
    pub attr: AttrName,
    /// Output column name.
    pub as_name: AttrName,
}

impl AggSpec {
    /// `fun(attr) AS {fun}_{attr}`.
    pub fn new(fun: AggFun, attr: impl Into<AttrName>) -> Self {
        let attr = attr.into();
        let as_name = AttrName::new(format!("{}_{}", fun.name(), attr));
        AggSpec { fun, attr, as_name }
    }

    /// Override the output column name.
    pub fn named(mut self, name: impl Into<AttrName>) -> Self {
        self.as_name = name.into();
        self
    }
}

/// Output schema of `γ_{group; aggs}(r)`.
pub fn aggregate_schema(
    schema: &XSchema,
    group: &[AttrName],
    aggs: &[AggSpec],
) -> Result<SchemaRef, PlanError> {
    if aggs.is_empty() {
        return Err(PlanError::Aggregate(
            "at least one aggregate required".into(),
        ));
    }
    let mut attrs = Vec::with_capacity(group.len() + aggs.len());
    for g in group {
        match schema.attr_by_name(g.as_str()) {
            Some(a) if a.is_real() => attrs.push(a.clone()),
            Some(_) => {
                return Err(PlanError::Aggregate(format!(
                    "group attribute `{g}` is virtual"
                )))
            }
            None => {
                return Err(PlanError::Aggregate(format!(
                    "unknown group attribute `{g}`"
                )))
            }
        }
    }
    for spec in aggs {
        let input_ty = match schema.attr_by_name(spec.attr.as_str()) {
            Some(a) if a.is_real() => a.ty,
            Some(_) => {
                return Err(PlanError::Aggregate(format!(
                    "aggregated attribute `{}` is virtual",
                    spec.attr
                )))
            }
            None => {
                return Err(PlanError::Aggregate(format!(
                    "unknown aggregated attribute `{}`",
                    spec.attr
                )))
            }
        };
        attrs.push(Attribute::real(
            spec.as_name.clone(),
            spec.fun.output_type(input_ty)?,
        ));
    }
    XSchema::from_attrs(attrs, Vec::new()).map_err(PlanError::Schema)
}

struct Accumulator {
    fun: AggFun,
    count: i64,
    sum: f64,
    int_only: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    fn new(fun: AggFun) -> Self {
        Accumulator {
            fun,
            count: 0,
            sum: 0.0,
            int_only: true,
            min: None,
            max: None,
        }
    }

    fn push(&mut self, v: &Value) {
        self.count += 1;
        if let Some(r) = v.as_real() {
            self.sum += r;
        }
        if !matches!(v, Value::Int(_)) {
            self.int_only = false;
        }
        let better_min = self
            .min
            .as_ref()
            .is_none_or(|m| v.partial_cmp_typed(m) == Some(std::cmp::Ordering::Less));
        if better_min {
            self.min = Some(v.clone());
        }
        let better_max = self
            .max
            .as_ref()
            .is_none_or(|m| v.partial_cmp_typed(m) == Some(std::cmp::Ordering::Greater));
        if better_max {
            self.max = Some(v.clone());
        }
    }

    fn finish(self) -> Value {
        match self.fun {
            AggFun::Count => Value::Int(self.count),
            AggFun::Sum => {
                if self.int_only {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Real(self.sum)
                }
            }
            AggFun::Avg => Value::Real(if self.count == 0 {
                f64::NAN
            } else {
                self.sum / self.count as f64
            }),
            AggFun::Min => self.min.expect("group is non-empty"),
            AggFun::Max => self.max.expect("group is non-empty"),
        }
    }
}

/// `γ_{group; aggs}(r)`.
pub fn aggregate(
    r: &XRelation,
    group: &[AttrName],
    aggs: &[AggSpec],
) -> Result<XRelation, EvalError> {
    let out_schema = aggregate_schema(r.schema(), group, aggs)?;
    let in_schema = r.schema();
    let group_coords: Vec<usize> = group
        .iter()
        .map(|g| in_schema.coord_of(g.as_str()).expect("validated real"))
        .collect();
    let agg_coords: Vec<usize> = aggs
        .iter()
        .map(|s| in_schema.coord_of(s.attr.as_str()).expect("validated real"))
        .collect();

    let mut groups: HashMap<Tuple, Vec<Accumulator>> = HashMap::new();
    let mut order: Vec<Tuple> = Vec::new();
    for t in r.iter() {
        let key = t.project_positions(&group_coords);
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            aggs.iter().map(|s| Accumulator::new(s.fun)).collect()
        });
        for (acc, &c) in accs.iter_mut().zip(&agg_coords) {
            acc.push(&t[c]);
        }
    }

    let mut out = XRelation::empty(out_schema);
    for key in order {
        let accs = groups.remove(&key).expect("keyed");
        let mut values: Vec<Value> = key.values().cloned().collect();
        values.extend(accs.into_iter().map(Accumulator::finish));
        out.insert(Tuple::new(values));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attr;
    use crate::schema::XSchema;
    use crate::tuple;

    fn readings() -> XRelation {
        let s = XSchema::builder()
            .real("location", DataType::Str)
            .real("temperature", DataType::Real)
            .build()
            .unwrap();
        XRelation::from_tuples(
            s,
            vec![
                tuple!["office", 20.0],
                tuple!["office", 22.0],
                tuple!["roof", 31.0],
            ],
        )
    }

    #[test]
    fn mean_temperature_per_location() {
        // the §1.2 motivating query: mean temperature for a given location
        let out = aggregate(
            &readings(),
            &[attr("location")],
            &[AggSpec::new(AggFun::Avg, "temperature").named("mean_temp")],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tuple!["office", 21.0]));
        assert!(out.contains(&tuple!["roof", 31.0]));
        assert!(out.schema().is_standard());
    }

    #[test]
    fn count_sum_min_max() {
        let out = aggregate(
            &readings(),
            &[],
            &[
                AggSpec::new(AggFun::Count, "temperature"),
                AggSpec::new(AggFun::Sum, "temperature"),
                AggSpec::new(AggFun::Min, "temperature"),
                AggSpec::new(AggFun::Max, "temperature"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&tuple![3, 73.0, 20.0, 31.0]));
    }

    #[test]
    fn sum_of_integers_stays_integer() {
        let s = XSchema::builder().real("n", DataType::Int).build().unwrap();
        let r = XRelation::from_tuples(s, vec![tuple![1], tuple![2], tuple![4]]);
        let out = aggregate(&r, &[], &[AggSpec::new(AggFun::Sum, "n")]).unwrap();
        assert!(out.contains(&tuple![7]));
    }

    #[test]
    fn group_attr_must_be_real() {
        let c = crate::xrelation::examples::contacts();
        assert!(aggregate(&c, &[attr("sent")], &[AggSpec::new(AggFun::Count, "name")]).is_err());
    }

    #[test]
    fn numeric_requirements_enforced() {
        let c = crate::xrelation::examples::contacts();
        assert!(aggregate(&c, &[], &[AggSpec::new(AggFun::Sum, "name")]).is_err());
        assert!(aggregate(&c, &[], &[AggSpec::new(AggFun::Count, "name")]).is_ok());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let r = XRelation::empty(readings().schema_ref());
        let out = aggregate(
            &r,
            &[attr("location")],
            &[AggSpec::new(AggFun::Avg, "temperature")],
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn output_schema_drops_bps_and_virtuals() {
        let sensors = crate::xrelation::examples::sensors();
        let out = aggregate(
            &sensors,
            &[attr("location")],
            &[AggSpec::new(AggFun::Count, "sensor").named("n")],
        )
        .unwrap();
        assert!(out.schema().binding_patterns().is_empty());
        assert!(out.schema().virtual_name_set().is_empty());
        assert!(out.contains(&tuple!["office", 2]));
    }
}
