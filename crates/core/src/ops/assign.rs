//! Assignment α (Table 3(e)).
//!
//! The realization operator for *individual* virtual attributes:
//! `α_{A:=B}(r)` copies the value of real attribute `B` into virtual
//! attribute `A`, and `α_{A:=a}(r)` assigns the constant `a`. In both cases
//! `A` becomes a real attribute of the output schema; binding patterns
//! whose prototype output contains `A` are eliminated (their output is no
//! longer fully virtual).

use crate::attr::AttrName;
use crate::error::PlanError;
use crate::schema::{AttrKind, Attribute, SchemaRef, XSchema};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::xrelation::XRelation;

/// The right-hand side of an assignment: a real attribute or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AssignSource {
    /// `α_{A:=B}` — copy from real attribute `B`.
    Attr(AttrName),
    /// `α_{A:=a}` — constant.
    Const(Value),
}

impl AssignSource {
    /// Attribute source.
    pub fn attr(name: impl Into<AttrName>) -> Self {
        AssignSource::Attr(name.into())
    }

    /// Constant source.
    pub fn constant(v: impl Into<Value>) -> Self {
        AssignSource::Const(v.into())
    }
}

impl std::fmt::Display for AssignSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignSource::Attr(a) => write!(f, "{a}"),
            AssignSource::Const(Value::Str(s)) => write!(f, "'{s}'"),
            AssignSource::Const(v) => write!(f, "{v}"),
        }
    }
}

/// Output schema of `α_{A:=src}(r)`.
pub fn assign_schema(
    schema: &XSchema,
    target: &AttrName,
    source: &AssignSource,
) -> Result<SchemaRef, PlanError> {
    match schema.attr_by_name(target.as_str()) {
        Some(a) if !a.is_real() => {}
        _ => return Err(PlanError::AssignTargetNotVirtual(target.clone())),
    }
    let target_ty = schema.type_of(target.as_str()).expect("present");
    match source {
        AssignSource::Attr(b) => {
            if !schema.is_real(b.as_str()) {
                return Err(PlanError::AssignSourceNotReal(b.clone()));
            }
            let src_ty = schema.type_of(b.as_str()).expect("present");
            if src_ty != target_ty {
                return Err(PlanError::AssignTypeMismatch {
                    attr: target.clone(),
                    expected: target_ty,
                    found: src_ty,
                });
            }
        }
        AssignSource::Const(v) => {
            if !v.conforms_to(target_ty) {
                return Err(PlanError::AssignTypeMismatch {
                    attr: target.clone(),
                    expected: target_ty,
                    found: v.data_type(),
                });
            }
        }
    }
    let attrs: Vec<Attribute> = schema
        .attrs()
        .iter()
        .map(|a| {
            if a.name == *target {
                Attribute {
                    name: a.name.clone(),
                    ty: a.ty,
                    kind: AttrKind::Real,
                }
            } else {
                a.clone()
            }
        })
        .collect();
    // BP(S): keep patterns whose outputs avoid the realized attribute.
    let bps = schema
        .binding_patterns()
        .iter()
        .filter(|bp| !bp.prototype().output().contains(target.as_str()))
        .cloned()
        .collect();
    XSchema::from_attrs(attrs, bps).map_err(PlanError::Schema)
}

/// `α_{A:=src}(r)`.
pub fn assign(
    r: &XRelation,
    target: &AttrName,
    source: &AssignSource,
) -> Result<XRelation, PlanError> {
    let schema = assign_schema(r.schema(), target, source)?;
    let in_schema = r.schema();
    // Recipe for the output tuple: coordinates of the new real layout.
    enum Src {
        Old(usize),
        New,
    }
    let recipe: Vec<Src> = schema
        .attrs()
        .iter()
        .filter(|a| a.is_real())
        .map(|a| {
            if a.name == *target {
                Src::New
            } else {
                Src::Old(in_schema.coord_of(a.name.as_str()).expect("was real"))
            }
        })
        .collect();
    let value_of = |t: &Tuple| -> Value {
        match source {
            AssignSource::Attr(b) => {
                let c = in_schema.coord_of(b.as_str()).expect("validated real");
                t[c].clone()
            }
            AssignSource::Const(v) => v.clone(),
        }
    };
    let mut out = XRelation::empty(schema);
    for t in r.iter() {
        let v = value_of(t);
        let new_t: Tuple = recipe
            .iter()
            .map(|s| match s {
                Src::Old(c) => t[*c].clone(),
                Src::New => v.clone(),
            })
            .collect();
        out.insert(new_t);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attr;
    use crate::tuple;
    use crate::xrelation::examples::{cameras, contacts};

    #[test]
    fn assign_const_realizes_text() {
        // α_{text:='Bonjour!'}(contacts) — the inner step of Q1 (Table 4)
        let c = contacts();
        let a = assign(&c, &attr("text"), &AssignSource::constant("Bonjour!")).unwrap();
        assert!(a.schema().is_real("text"));
        assert_eq!(
            a.schema()
                .virtual_name_set()
                .into_iter()
                .collect::<Vec<_>>(),
            vec!["sent"]
        );
        // sendMessage's output is {sent}, untouched → BP survives
        assert_eq!(a.schema().binding_patterns().len(), 1);
        assert_eq!(a.len(), 3);
        // tuple layout: name, address, text, messenger (new real order)
        assert!(a.contains(&tuple!["Nicolas", "nicolas@elysee.fr", "Bonjour!", "email"]));
    }

    #[test]
    fn assign_attr_copies_value() {
        // copy area into a virtual 'zone' attribute
        let s = crate::schema::XSchema::builder()
            .real("area", crate::value::DataType::Str)
            .virt("zone", crate::value::DataType::Str)
            .build()
            .unwrap();
        let r = XRelation::from_tuples(s, vec![tuple!["office"], tuple!["roof"]]);
        let a = assign(&r, &attr("zone"), &AssignSource::attr("area")).unwrap();
        assert!(a.contains(&tuple!["office", "office"]));
        assert!(a.contains(&tuple!["roof", "roof"]));
    }

    #[test]
    fn assigning_bp_output_attr_drops_bp() {
        // realize `quality` by hand → checkPhoto (outputs quality, delay)
        // no longer valid; takePhoto survives.
        let cams = cameras();
        let a = assign(&cams, &attr("quality"), &AssignSource::constant(7)).unwrap();
        let keys: Vec<String> = a
            .schema()
            .binding_patterns()
            .iter()
            .map(|bp| bp.key())
            .collect();
        assert_eq!(keys, vec!["takePhoto[camera]"]);
        assert!(a.contains(&tuple!["camera01", "office", 7]));
    }

    #[test]
    fn target_must_be_virtual() {
        let c = contacts();
        assert!(matches!(
            assign(&c, &attr("name"), &AssignSource::constant("X")),
            Err(PlanError::AssignTargetNotVirtual(_))
        ));
        assert!(matches!(
            assign(&c, &attr("ghost"), &AssignSource::constant("X")),
            Err(PlanError::AssignTargetNotVirtual(_))
        ));
    }

    #[test]
    fn source_must_be_real() {
        let c = contacts();
        // `sent` is virtual → invalid source
        assert!(matches!(
            assign(&c, &attr("text"), &AssignSource::attr("sent")),
            Err(PlanError::AssignSourceNotReal(_))
        ));
    }

    #[test]
    fn type_agreement_enforced() {
        let c = contacts();
        assert!(matches!(
            assign(&c, &attr("text"), &AssignSource::constant(42)),
            Err(PlanError::AssignTypeMismatch { .. })
        ));
        // attribute source with wrong type: messenger SERVICE vs sent BOOLEAN
        assert!(matches!(
            assign(&c, &attr("sent"), &AssignSource::attr("messenger")),
            Err(PlanError::AssignTypeMismatch { .. })
        ));
    }

    #[test]
    fn realization_is_irreversible_no_double_assign() {
        let c = contacts();
        let once = assign(&c, &attr("text"), &AssignSource::constant("hi")).unwrap();
        // `text` is now real → a second α on it must fail
        assert!(matches!(
            assign(&once, &attr("text"), &AssignSource::constant("again")),
            Err(PlanError::AssignTargetNotVirtual(_))
        ));
    }
}
