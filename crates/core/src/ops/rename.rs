//! Renaming ρ (Table 3(c)).
//!
//! `ρ_{A→B}(r)` replaces attribute `A` by `B` (which must not already be in
//! the schema), keeping the real/virtual status. Binding patterns follow
//! the renaming: a pattern whose *service attribute* is `A` is rewritten to
//! use `B`; a pattern whose prototype *input or output* schema mentions `A`
//! no longer type-checks against the renamed relation (the prototype itself
//! is immutable) and is dropped, exactly as Table 3(c)'s subset conditions
//! prescribe.

use crate::attr::AttrName;
use crate::error::PlanError;
use crate::schema::{Attribute, SchemaRef, XSchema};
use crate::xrelation::XRelation;

/// Output schema of `ρ_{A→B}(r)`.
pub fn rename_schema(
    schema: &XSchema,
    from: &AttrName,
    to: &AttrName,
) -> Result<SchemaRef, PlanError> {
    if !schema.contains(from.as_str()) {
        return Err(PlanError::RenameSourceMissing(from.clone()));
    }
    if schema.contains(to.as_str()) {
        return Err(PlanError::RenameTargetExists(to.clone()));
    }
    let attrs: Vec<Attribute> = schema
        .attrs()
        .iter()
        .map(|a| {
            if a.name == *from {
                Attribute {
                    name: to.clone(),
                    ty: a.ty,
                    kind: a.kind,
                }
            } else {
                a.clone()
            }
        })
        .collect();
    // Candidate BPs: rename the service attribute when it is `from`; then
    // keep only those whose prototype input/output schemas still resolve
    // (i.e. do not mention `from`, which no longer exists).
    let bps = schema
        .binding_patterns()
        .iter()
        .filter_map(|bp| {
            let proto = bp.prototype();
            let mentions_renamed =
                proto.input().contains(from.as_str()) || proto.output().contains(from.as_str());
            if mentions_renamed {
                return None;
            }
            if bp.service_attr() == from {
                Some(bp.with_service_attr(to.clone()))
            } else {
                Some(bp.clone())
            }
        })
        .collect();
    XSchema::from_attrs(attrs, bps).map_err(PlanError::Schema)
}

/// `ρ_{A→B}(r)`. Tuples are untouched: renaming never changes the
/// real/virtual status, hence coordinates are identical.
pub fn rename(r: &XRelation, from: &AttrName, to: &AttrName) -> Result<XRelation, PlanError> {
    let schema = rename_schema(r.schema(), from, to)?;
    Ok(XRelation::from_tuples(schema, r.iter().cloned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attr;
    use crate::tuple;
    use crate::xrelation::examples::{contacts, sensors};

    #[test]
    fn renames_real_attribute_keeping_tuples() {
        let c = contacts();
        let r = rename(&c, &attr("name"), &attr("who")).unwrap();
        assert!(r.schema().is_real("who"));
        assert!(!r.schema().contains("name"));
        assert!(r.contains(&tuple!["Nicolas", "nicolas@elysee.fr", "email"]));
        // BP untouched (sendMessage mentions address/text/sent, not name)
        assert_eq!(r.schema().binding_patterns().len(), 1);
    }

    #[test]
    fn renames_virtual_attribute() {
        let c = contacts();
        let r = rename(&c, &attr("text"), &attr("body")).unwrap();
        assert!(r.schema().is_virtual("body"));
        // sendMessage's input mentions `text` → BP dropped
        assert!(r.schema().binding_patterns().is_empty());
    }

    #[test]
    fn service_attr_rename_rewrites_bp() {
        let s = sensors();
        let r = rename(&s, &attr("sensor"), &attr("probe")).unwrap();
        assert_eq!(r.schema().binding_patterns().len(), 1);
        assert_eq!(
            r.schema().binding_patterns()[0].key(),
            "getTemperature[probe]"
        );
    }

    #[test]
    fn renaming_prototype_output_attr_drops_bp() {
        let s = sensors();
        let r = rename(&s, &attr("temperature"), &attr("celsius")).unwrap();
        assert!(r.schema().binding_patterns().is_empty());
        assert!(r.schema().is_virtual("celsius"));
    }

    #[test]
    fn missing_source_rejected() {
        assert!(matches!(
            rename(&contacts(), &attr("ghost"), &attr("x")),
            Err(PlanError::RenameSourceMissing(_))
        ));
    }

    #[test]
    fn existing_target_rejected() {
        assert!(matches!(
            rename(&contacts(), &attr("name"), &attr("address")),
            Err(PlanError::RenameTargetExists(_))
        ));
    }

    #[test]
    fn rename_round_trip_is_identity() {
        let c = contacts();
        let there = rename(&c, &attr("name"), &attr("who")).unwrap();
        let back = rename(&there, &attr("who"), &attr("name")).unwrap();
        assert_eq!(back, c);
        assert_eq!(
            back.schema().binding_patterns().len(),
            c.schema().binding_patterns().len()
        );
    }
}
