//! Set operators over X-Relations (§3.1.1).
//!
//! Union, intersection and difference "can be applied over two X-Relations
//! associated with the same schema. The resulting X-Relation is defined over
//! the same schema." Schema identity is up to attribute order
//! ([`XSchema::compatible_with`]); the right operand's tuples are permuted
//! into the left operand's coordinate order when necessary.

use crate::error::PlanError;
use crate::schema::{SchemaRef, XSchema};
use crate::xrelation::XRelation;

/// Derive the output schema of a set operator: the (left) operand schema,
/// after checking compatibility.
pub fn set_op_schema(left: &SchemaRef, right: &SchemaRef) -> Result<SchemaRef, PlanError> {
    if !left.compatible_with(right) {
        return Err(PlanError::SetOperandSchemaMismatch {
            left: format!("{left:?}"),
            right: format!("{right:?}"),
        });
    }
    Ok(left.clone())
}

fn reordered<'a>(
    target: &XSchema,
    source: &'a XRelation,
) -> impl Iterator<Item = crate::tuple::Tuple> + 'a {
    let map = target
        .reorder_map(source.schema())
        .expect("checked compatible");
    let identity: Vec<usize> = (0..target.real_arity()).collect();
    let is_identity = map == identity;
    source.iter().map(move |t| {
        if is_identity {
            t.clone()
        } else {
            t.project_positions(&map)
        }
    })
}

/// `r1 ∪ r2`.
pub fn union(r1: &XRelation, r2: &XRelation) -> Result<XRelation, PlanError> {
    let schema = set_op_schema(&r1.schema_ref(), &r2.schema_ref())?;
    let mut out = r1.clone();
    for t in reordered(&schema, r2) {
        out.insert(t);
    }
    Ok(out)
}

/// `r1 ∩ r2`.
pub fn intersect(r1: &XRelation, r2: &XRelation) -> Result<XRelation, PlanError> {
    let schema = set_op_schema(&r1.schema_ref(), &r2.schema_ref())?;
    let mut out = XRelation::empty(schema.clone());
    let rhs: std::collections::HashSet<_> = reordered(&schema, r2).collect();
    for t in r1.iter() {
        if rhs.contains(t) {
            out.insert(t.clone());
        }
    }
    Ok(out)
}

/// `r1 − r2`.
pub fn difference(r1: &XRelation, r2: &XRelation) -> Result<XRelation, PlanError> {
    let schema = set_op_schema(&r1.schema_ref(), &r2.schema_ref())?;
    let mut out = XRelation::empty(schema.clone());
    let rhs: std::collections::HashSet<_> = reordered(&schema, r2).collect();
    for t in r1.iter() {
        if !rhs.contains(t) {
            out.insert(t.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::XSchema;
    use crate::tuple;
    use crate::value::DataType;
    use crate::xrelation::examples::contacts;

    fn rel(vals: &[i64]) -> XRelation {
        let s = XSchema::builder().real("x", DataType::Int).build().unwrap();
        XRelation::from_tuples(s, vals.iter().map(|&v| tuple![v]))
    }

    #[test]
    fn union_dedups() {
        let u = union(&rel(&[1, 2]), &rel(&[2, 3])).unwrap();
        assert_eq!(u.len(), 3);
        assert!(u.contains(&tuple![1]) && u.contains(&tuple![2]) && u.contains(&tuple![3]));
    }

    #[test]
    fn intersect_and_difference() {
        let a = rel(&[1, 2, 3]);
        let b = rel(&[2, 3, 4]);
        let i = intersect(&a, &b).unwrap();
        assert_eq!(i.len(), 2);
        let d = difference(&a, &b).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains(&tuple![1]));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let a = rel(&[1]);
        let s = XSchema::builder().real("y", DataType::Int).build().unwrap();
        let b = XRelation::from_tuples(s, vec![tuple![1]]);
        assert!(matches!(
            union(&a, &b),
            Err(PlanError::SetOperandSchemaMismatch { .. })
        ));
    }

    #[test]
    fn attribute_order_insensitive() {
        let a = XSchema::builder()
            .real("x", DataType::Int)
            .real("y", DataType::Str)
            .build()
            .unwrap();
        let b = XSchema::builder()
            .real("y", DataType::Str)
            .real("x", DataType::Int)
            .build()
            .unwrap();
        let ra = XRelation::from_tuples(a, vec![tuple![1, "p"]]);
        let rb = XRelation::from_tuples(b, vec![tuple!["p", 1], tuple!["q", 2]]);
        let u = union(&ra, &rb).unwrap();
        assert_eq!(u.len(), 2); // (1,p) dedups across orders
        let i = intersect(&ra, &rb).unwrap();
        assert_eq!(i.len(), 1);
        let d = difference(&rb, &ra).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn preserves_extended_schema_and_bps() {
        let c = contacts();
        let u = union(&c, &c).unwrap();
        assert_eq!(u.len(), 3);
        assert_eq!(u.schema().binding_patterns().len(), 1);
        assert_eq!(u.schema().virtual_name_set().len(), 2);
    }

    #[test]
    fn algebraic_identities() {
        let a = rel(&[1, 2]);
        let b = rel(&[2, 3]);
        // commutativity of ∪ and ∩
        assert_eq!(union(&a, &b).unwrap(), union(&b, &a).unwrap());
        assert_eq!(intersect(&a, &b).unwrap(), intersect(&b, &a).unwrap());
        // a − a = ∅; a ∪ a = a
        assert!(difference(&a, &a).unwrap().is_empty());
        assert_eq!(union(&a, &a).unwrap(), a);
    }
}
