//! Natural join ⋈ (Table 3(d)).
//!
//! The join attributes are `schema(R1) ∩ schema(R2)`. Statuses combine by
//! "real wins": `realSchema(S) = realSchema(R1) ∪ realSchema(R2)`, so an
//! attribute real in one operand and virtual in the other becomes real —
//! the *implicit realization* of §3.1.3. Only attributes **real in both**
//! operands impose a join predicate; if no such attribute exists the join
//! degenerates, at tuple level, to a Cartesian product.
//!
//! `BP(S)` is the union of both operands' binding patterns minus those
//! whose prototype output attributes became real through the join.

use std::collections::HashMap;

use crate::error::PlanError;
use crate::schema::{Attribute, SchemaRef, XSchema};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::xrelation::XRelation;

/// Output schema of `r1 ⋈ r2`.
pub fn join_schema(s1: &XSchema, s2: &XSchema) -> Result<SchemaRef, PlanError> {
    // Common attributes must agree on their declared type (URSA, §2.3.2).
    for a in s1.attrs() {
        if let Some(b) = s2.attr_by_name(a.name.as_str()) {
            if a.ty != b.ty {
                return Err(PlanError::Schema(
                    crate::error::SchemaError::UrsaViolation {
                        attr: a.name.clone(),
                        first: a.ty,
                        second: b.ty,
                    },
                ));
            }
        }
    }
    // schema(S) = schema(R1) ∪ schema(R2); R1 order first, then new R2 attrs.
    let mut attrs: Vec<Attribute> = Vec::with_capacity(s1.arity() + s2.arity());
    for a in s1.attrs() {
        let real = a.is_real() || s2.is_real(a.name.as_str());
        attrs.push(Attribute {
            name: a.name.clone(),
            ty: a.ty,
            kind: if real {
                crate::schema::AttrKind::Real
            } else {
                crate::schema::AttrKind::Virtual
            },
        });
    }
    for b in s2.attrs() {
        if !s1.contains(b.name.as_str()) {
            attrs.push(b.clone());
        }
    }
    let virtuals: std::collections::BTreeSet<&str> = attrs
        .iter()
        .filter(|a| !a.is_real())
        .map(|a| a.name.as_str())
        .collect();
    // BP(S): union, minus patterns whose outputs were (partly) realized.
    let mut bps: Vec<crate::binding::BindingPattern> = Vec::new();
    for bp in s1.binding_patterns().iter().chain(s2.binding_patterns()) {
        let alive = bp
            .prototype()
            .output()
            .names()
            .all(|a| virtuals.contains(a.as_str()));
        if alive && !bps.contains(bp) {
            bps.push(bp.clone());
        }
    }
    XSchema::from_attrs(attrs, bps).map_err(PlanError::Schema)
}

/// `r1 ⋈ r2`.
pub fn join(r1: &XRelation, r2: &XRelation) -> Result<XRelation, PlanError> {
    let s1 = r1.schema();
    let s2 = r2.schema();
    let out_schema = join_schema(s1, s2)?;

    // Join predicate: attributes real in BOTH operands.
    let key_attrs: Vec<&str> = s1
        .attrs()
        .iter()
        .filter(|a| a.is_real() && s2.is_real(a.name.as_str()))
        .map(|a| a.name.as_str())
        .collect();
    let key1: Vec<usize> = key_attrs
        .iter()
        .map(|a| s1.coord_of(a).expect("real in s1"))
        .collect();
    let key2: Vec<usize> = key_attrs
        .iter()
        .map(|a| s2.coord_of(a).expect("real in s2"))
        .collect();

    // Output construction recipe: for each real attribute of the output
    // schema, pull from r1 when real there, else from r2.
    enum Src {
        Left(usize),
        Right(usize),
    }
    let recipe: Vec<Src> = out_schema
        .attrs()
        .iter()
        .filter(|a| a.is_real())
        .map(|a| match s1.coord_of(a.name.as_str()) {
            Some(c) => Src::Left(c),
            None => Src::Right(s2.coord_of(a.name.as_str()).expect("real in s2")),
        })
        .collect();

    let build = |t1: &Tuple, t2: &Tuple| -> Tuple {
        recipe
            .iter()
            .map(|s| match s {
                Src::Left(c) => t1[*c].clone(),
                Src::Right(c) => t2[*c].clone(),
            })
            .collect()
    };

    let mut out = XRelation::empty(out_schema);
    if key_attrs.is_empty() {
        // Cartesian product.
        for t1 in r1.iter() {
            for t2 in r2.iter() {
                out.insert(build(t1, t2));
            }
        }
    } else {
        // Hash join: build on the smaller side conceptually; here r2.
        let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
        for t2 in r2.iter() {
            let k: Vec<Value> = key2.iter().map(|&c| t2[c].clone()).collect();
            table.entry(k).or_default().push(t2);
        }
        for t1 in r1.iter() {
            let k: Vec<Value> = key1.iter().map(|&c| t1[c].clone()).collect();
            if let Some(matches) = table.get(&k) {
                for t2 in matches {
                    out.insert(build(t1, t2));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::XSchema;
    use crate::tuple;
    use crate::value::DataType;
    use crate::xrelation::examples::{cameras, sensors};

    fn surveillance() -> XRelation {
        // who manages which location (the scenario's 4th table, §5.2)
        let s = XSchema::builder()
            .real("location", DataType::Str)
            .real("manager", DataType::Str)
            .build()
            .unwrap();
        XRelation::from_tuples(
            s,
            vec![tuple!["office", "Carla"], tuple!["roof", "Nicolas"]],
        )
    }

    #[test]
    fn natural_join_on_both_real_attr() {
        let j = join(&sensors(), &surveillance()).unwrap();
        // sensors: corridor/office/office/roof × surveillance office/roof
        assert_eq!(j.len(), 3);
        assert!(j.contains(&tuple!["sensor06", "office", "Carla"]));
        assert!(j.contains(&tuple!["sensor07", "office", "Carla"]));
        assert!(j.contains(&tuple!["sensor22", "roof", "Nicolas"]));
        // temperature stays virtual; getTemperature BP survives
        assert!(j.schema().is_virtual("temperature"));
        assert_eq!(j.schema().binding_patterns().len(), 1);
    }

    #[test]
    fn no_common_real_attr_is_cartesian() {
        let a = XRelation::from_tuples(
            XSchema::builder().real("x", DataType::Int).build().unwrap(),
            vec![tuple![1], tuple![2]],
        );
        let b = XRelation::from_tuples(
            XSchema::builder().real("y", DataType::Int).build().unwrap(),
            vec![tuple![10], tuple![20], tuple![30]],
        );
        let j = join(&a, &b).unwrap();
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn implicit_realization_real_wins() {
        // `quality` virtual in cameras, real in a requirements table: the
        // join realizes `quality` with the requirements' value, and
        // checkPhoto's BP (output: quality, delay) is eliminated.
        let reqs = XRelation::from_tuples(
            XSchema::builder()
                .real("area", DataType::Str)
                .real("quality", DataType::Int)
                .build()
                .unwrap(),
            vec![tuple!["office", 5]],
        );
        let j = join(&cameras(), &reqs).unwrap();
        assert!(j.schema().is_real("quality"));
        assert!(j.schema().is_virtual("delay"));
        assert!(j.schema().is_virtual("photo"));
        let keys: Vec<String> = j
            .schema()
            .binding_patterns()
            .iter()
            .map(|bp| bp.key())
            .collect();
        // checkPhoto outputs (quality, delay); quality became real → dropped.
        // takePhoto outputs (photo), still virtual → survives.
        assert_eq!(keys, vec!["takePhoto[camera]"]);
        // join predicate used only `area` (the only both-real common attr):
        // cameras in office: camera01, webcam07
        assert_eq!(j.len(), 2);
        assert!(j.contains(&tuple!["camera01", "office", 5]));
        assert!(j.contains(&tuple!["webcam07", "office", 5]));
    }

    #[test]
    fn virtual_virtual_common_attr_stays_virtual_no_predicate() {
        // `temperature` virtual in both → stays virtual, no predicate: the
        // tuple-level result is the Cartesian product.
        let other = XRelation::from_tuples(
            XSchema::builder()
                .real("zone", DataType::Str)
                .virt("temperature", DataType::Real)
                .build()
                .unwrap(),
            vec![tuple!["north"], tuple!["south"]],
        );
        let j = join(&sensors(), &other).unwrap();
        assert!(j.schema().is_virtual("temperature"));
        assert_eq!(j.len(), 4 * 2);
        // getTemperature BP survives (output still virtual) and dedups once
        assert_eq!(j.schema().binding_patterns().len(), 1);
    }

    #[test]
    fn type_conflict_on_common_attr_rejected() {
        let bad = XRelation::from_tuples(
            XSchema::builder()
                .real("location", DataType::Int)
                .build()
                .unwrap(),
            vec![tuple![1]],
        );
        assert!(join(&sensors(), &bad).is_err());
    }

    #[test]
    fn join_is_commutative_as_sets() {
        let a = sensors();
        let b = surveillance();
        let ab = join(&a, &b).unwrap();
        let ba = join(&b, &a).unwrap();
        assert_eq!(ab, ba); // set_eq is order-insensitive
    }

    #[test]
    fn self_join_is_identity() {
        let s = sensors();
        let j = join(&s, &s).unwrap();
        assert_eq!(j, s);
    }

    #[test]
    fn bp_dedup_across_operands() {
        let s = sensors();
        let j = join(&s, &s).unwrap();
        assert_eq!(j.schema().binding_patterns().len(), 1);
    }
}
