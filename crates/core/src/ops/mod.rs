//! The Serena algebra operators (§3.1, Table 3).
//!
//! Three operator families:
//!
//! * **set operators** (§3.1.1): [`union`], [`intersect`], [`difference`] —
//!   same-schema operands, standard set semantics;
//! * **relational operators** (§3.1.2): [`project`] (π), [`select`] (σ),
//!   [`rename`] (ρ), [`join`] (⋈) — extended to propagate the real/virtual
//!   partition and binding patterns per Table 3;
//! * **realization operators** (§3.1.3): [`assign`] (α), [`invoke`] (β) —
//!   turn virtual attributes into real ones, the latter by invoking a
//!   binding pattern on per-tuple services.
//!
//! Each operator comes in two halves: a `*_schema` function deriving the
//! output [`XSchema`](crate::schema::XSchema) (used for static plan validation) and an executor
//! producing the output [`XRelation`](crate::xrelation::XRelation). Executors always go through the
//! schema derivation, so a plan that validates cannot fail on schema grounds
//! at runtime.
//!
//! [`aggregate`] (γ) is an **extension** beyond the paper (motivated by the
//! "mean temperature" queries of §1.2) and is excluded from the
//! equivalence-rule reproduction.

mod aggregate;
mod assign;
mod invoke;
mod join;
mod project;
mod rename;
mod select;
mod set;

pub use aggregate::{aggregate, aggregate_schema, AggFun, AggSpec};
pub use assign::{assign, assign_schema, AssignSource};
pub use invoke::{
    invoke, invoke_delta, invoke_delta_observed, invoke_observed, invoke_schema, DegradePolicy,
    InvokeRecipe, InvokeTally, TupleCall,
};
pub use join::{join, join_schema};
pub use project::{project, project_schema};
pub use rename::{rename, rename_schema};
pub use select::{select, select_schema};
pub use set::{difference, intersect, set_op_schema, union};

use crate::binding::BindingPattern;
use std::collections::BTreeSet;

/// Shared binding-pattern survival test: a pattern remains valid for a
/// schema with attribute set `names`, real set `reals` and virtual set
/// `virtuals` iff its service attribute is a real attribute, its prototype
/// input attributes are all present, and its output attributes are all still
/// virtual (Definition 2 restated over the new schema).
pub(crate) fn bp_survives(
    bp: &BindingPattern,
    names: &BTreeSet<&str>,
    reals: &BTreeSet<&str>,
    virtuals: &BTreeSet<&str>,
) -> bool {
    reals.contains(bp.service_attr().as_str())
        && bp
            .prototype()
            .input()
            .names()
            .all(|a| names.contains(a.as_str()))
        && bp
            .prototype()
            .output()
            .names()
            .all(|a| virtuals.contains(a.as_str()))
}
