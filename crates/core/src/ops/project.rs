//! Projection π (Table 3(a)).
//!
//! Reduces the schema to `Y ⊆ schema(R)`; real and virtual schemas are
//! intersected with `Y`; binding patterns survive iff their service
//! attribute, prototype input attributes *and* output attributes all remain
//! in `Y`. At tuple level, tuples are projected onto `Y ∩ realSchema(R)`.

use std::collections::BTreeSet;

use crate::attr::AttrName;
use crate::error::PlanError;
use crate::schema::{SchemaRef, XSchema};
use crate::xrelation::XRelation;

use super::bp_survives;

/// Output schema of `π_Y(r)`. `attrs` gives the projection list `Y`; the
/// output preserves the *requested* attribute order (schemas compare as
/// sets, so this is cosmetic).
pub fn project_schema(schema: &XSchema, attrs: &[AttrName]) -> Result<SchemaRef, PlanError> {
    let mut kept = Vec::with_capacity(attrs.len());
    for a in attrs {
        match schema.attr_by_name(a.as_str()) {
            Some(found) => kept.push(found.clone()),
            None => return Err(PlanError::ProjectionUnknownAttribute(a.clone())),
        }
    }
    let names: BTreeSet<&str> = kept.iter().map(|a| a.name.as_str()).collect();
    if names.len() != kept.len() {
        // duplicate attribute in the projection list
        let dup = attrs
            .iter()
            .find(|a| attrs.iter().filter(|b| *b == *a).count() > 1)
            .expect("duplicate exists");
        return Err(PlanError::Schema(
            crate::error::SchemaError::DuplicateAttribute(dup.clone()),
        ));
    }
    let reals: BTreeSet<&str> = kept
        .iter()
        .filter(|a| a.is_real())
        .map(|a| a.name.as_str())
        .collect();
    let virtuals: BTreeSet<&str> = kept
        .iter()
        .filter(|a| !a.is_real())
        .map(|a| a.name.as_str())
        .collect();
    let bps = schema
        .binding_patterns()
        .iter()
        .filter(|bp| bp_survives(bp, &names, &reals, &virtuals))
        .cloned()
        .collect();
    XSchema::from_attrs(kept, bps).map_err(PlanError::Schema)
}

/// `π_Y(r)`.
pub fn project(r: &XRelation, attrs: &[AttrName]) -> Result<XRelation, PlanError> {
    let schema = project_schema(r.schema(), attrs)?;
    // Coordinates of the surviving real attributes, in output order.
    let coords: Vec<usize> = schema
        .attrs()
        .iter()
        .filter(|a| a.is_real())
        .map(|a| {
            r.schema()
                .coord_of(a.name.as_str())
                .expect("real in input schema")
        })
        .collect();
    let mut out = XRelation::empty(schema);
    for t in r.iter() {
        out.insert(t.project_positions(&coords));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::attr;
    use crate::tuple;
    use crate::xrelation::examples::{cameras, contacts};

    #[test]
    fn projection_reduces_both_partitions() {
        let c = contacts();
        let p = project(&c, &[attr("name"), attr("text")]).unwrap();
        assert_eq!(
            p.schema().real_name_set().into_iter().collect::<Vec<_>>(),
            vec!["name"]
        );
        assert_eq!(
            p.schema()
                .virtual_name_set()
                .into_iter()
                .collect::<Vec<_>>(),
            vec!["text"]
        );
        assert_eq!(p.len(), 3);
        assert!(p.contains(&tuple!["Nicolas"]));
    }

    #[test]
    fn bp_dropped_when_service_attr_projected_away() {
        let c = contacts();
        // drop `messenger` → sendMessage[messenger] invalid
        let p = project(
            &c,
            &[attr("name"), attr("address"), attr("text"), attr("sent")],
        )
        .unwrap();
        assert!(p.schema().binding_patterns().is_empty());
    }

    #[test]
    fn bp_dropped_when_input_attr_projected_away() {
        let c = contacts();
        // drop `address` (input of sendMessage) → BP invalid
        let p = project(
            &c,
            &[attr("name"), attr("messenger"), attr("text"), attr("sent")],
        )
        .unwrap();
        assert!(p.schema().binding_patterns().is_empty());
    }

    #[test]
    fn bp_dropped_when_output_attr_projected_away() {
        let c = contacts();
        // drop `sent` (output of sendMessage) → BP invalid
        let p = project(
            &c,
            &[
                attr("name"),
                attr("address"),
                attr("messenger"),
                attr("text"),
            ],
        )
        .unwrap();
        assert!(p.schema().binding_patterns().is_empty());
    }

    #[test]
    fn bp_survives_when_all_attrs_kept() {
        let c = contacts();
        let p = project(
            &c,
            &[
                attr("address"),
                attr("messenger"),
                attr("text"),
                attr("sent"),
            ],
        )
        .unwrap();
        assert_eq!(p.schema().binding_patterns().len(), 1);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn per_bp_survival_is_independent() {
        let cams = cameras();
        // Keep everything checkPhoto needs but drop takePhoto's output.
        let p = project(
            &cams,
            &[attr("camera"), attr("area"), attr("quality"), attr("delay")],
        )
        .unwrap();
        let keys: Vec<String> = p
            .schema()
            .binding_patterns()
            .iter()
            .map(|bp| bp.key())
            .collect();
        assert_eq!(keys, vec!["checkPhoto[camera]"]);
    }

    #[test]
    fn projection_dedups_tuples() {
        let cams = cameras(); // areas: office, corridor, office
        let p = project(&cams, &[attr("area")]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unknown_attribute_rejected() {
        let c = contacts();
        assert!(matches!(
            project(&c, &[attr("ghost")]),
            Err(PlanError::ProjectionUnknownAttribute(_))
        ));
    }

    #[test]
    fn duplicate_projection_attr_rejected() {
        let c = contacts();
        assert!(project(&c, &[attr("name"), attr("name")]).is_err());
    }

    #[test]
    fn requested_order_is_preserved() {
        let c = contacts();
        let p = project(&c, &[attr("messenger"), attr("name")]).unwrap();
        let names: Vec<String> = p.schema().names().map(|a| a.to_string()).collect();
        assert_eq!(names, vec!["messenger", "name"]);
        assert!(p.contains(&tuple!["email", "Nicolas"]));
    }

    #[test]
    fn projection_onto_virtual_only_yields_empty_tuples() {
        let c = contacts();
        let p = project(&c, &[attr("text")]).unwrap();
        // 3 input tuples all project to the empty tuple → set collapses to 1
        assert_eq!(p.len(), 1);
        assert_eq!(p.iter().next().unwrap().arity(), 0);
    }
}
