//! Per-service health tracking fed by invocation outcomes.
//!
//! The paper's robustness concern (§5.2) is exactly this: services in a
//! pervasive environment come and go, fail intermittently, and the system
//! must keep answering. A [`HealthTracker`] implements
//! [`serena_core::telemetry::InvocationObserver`] — plug it into an
//! [`serena_core::telemetry::InstrumentedInvoker`] and every β invocation
//! outcome (including injected [`crate::faults::FaultyService`] errors)
//! updates a per-[`ServiceRef`] record: total attempts/failures, the
//! **rolling failure rate** over the last [`HealthTracker::window`]
//! outcomes, the **consecutive-error count**, and the **last-seen logical
//! instant**. [`HealthTracker::report`] snapshots everything as
//! [`ServiceHealth`] rows — the data behind `Pems::service_health()` and
//! the shell's `\health` command.

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use serena_core::error::EvalError;
use serena_core::snapshot::{Reader, SnapshotError, Writer};
use serena_core::sync::Mutex;
use serena_core::telemetry::InvocationObserver;
use serena_core::time::Instant;
use serena_core::value::ServiceRef;

/// Default rolling-window length (outcomes) for failure-rate estimation.
pub const DEFAULT_WINDOW: usize = 32;

/// Consecutive errors at which a service is reported [`HealthStatus::Down`].
pub const DOWN_AFTER: u64 = 3;

#[derive(Debug, Default)]
struct HealthEntry {
    attempts: u64,
    failures: u64,
    consecutive_errors: u64,
    last_seen: Option<Instant>,
    last_error: Option<String>,
    /// Most recent outcomes, `true` = success; bounded by the window.
    recent: VecDeque<bool>,
}

/// Coarse health classification derived from the rolling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// No failures in the rolling window.
    Healthy,
    /// Some failures in the window, but the service still answers.
    Degraded,
    /// At least [`DOWN_AFTER`] consecutive errors — presumed gone.
    Down,
}

impl std::fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthStatus::Healthy => write!(f, "healthy"),
            HealthStatus::Degraded => write!(f, "degraded"),
            HealthStatus::Down => write!(f, "down"),
        }
    }
}

/// Snapshot of one service's health.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceHealth {
    /// The service.
    pub reference: ServiceRef,
    /// Total invocation attempts observed (matches
    /// [`crate::faults::FaultyService::attempts`] when the tracker sees
    /// every call).
    pub attempts: u64,
    /// Total failed attempts.
    pub failures: u64,
    /// Failures since the last success.
    pub consecutive_errors: u64,
    /// Failure rate over the rolling window (`0.0 ..= 1.0`).
    pub failure_rate: f64,
    /// Outcomes currently in the rolling window.
    pub window_len: usize,
    /// Logical instant of the most recent attempt.
    pub last_seen: Option<Instant>,
    /// Message of the most recent failure, if any.
    pub last_error: Option<String>,
}

impl ServiceHealth {
    /// Classify this snapshot.
    pub fn status(&self) -> HealthStatus {
        if self.consecutive_errors >= DOWN_AFTER {
            HealthStatus::Down
        } else if self.failure_rate > 0.0 {
            HealthStatus::Degraded
        } else {
            HealthStatus::Healthy
        }
    }
}

/// Rolling per-service health, fed by invocation outcomes.
#[derive(Debug)]
pub struct HealthTracker {
    window: usize,
    entries: Mutex<BTreeMap<ServiceRef, HealthEntry>>,
}

impl Default for HealthTracker {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW)
    }
}

impl HealthTracker {
    /// Tracker with a rolling window of `window` outcomes per service
    /// (clamped to at least 1).
    pub fn new(window: usize) -> Self {
        HealthTracker {
            window: window.max(1),
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// The configured rolling-window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Record one outcome directly (the [`InvocationObserver`] impl calls
    /// this; tests may too).
    pub fn record(&self, service: &ServiceRef, at: Instant, error: Option<&str>) {
        let mut entries = self.entries.lock();
        let e = entries.entry(service.clone()).or_default();
        e.attempts += 1;
        e.last_seen = Some(at);
        if let Some(msg) = error {
            e.failures += 1;
            e.consecutive_errors += 1;
            e.last_error = Some(msg.to_string());
        } else {
            e.consecutive_errors = 0;
        }
        e.recent.push_back(error.is_none());
        while e.recent.len() > self.window {
            e.recent.pop_front();
        }
    }

    /// Snapshot one service's health, if it has been observed.
    pub fn health_of(&self, service: &ServiceRef) -> Option<ServiceHealth> {
        self.entries
            .lock()
            .get(service)
            .map(|e| snapshot(service.clone(), e))
    }

    /// Snapshot every observed service, ordered by reference.
    pub fn report(&self) -> Vec<ServiceHealth> {
        self.entries
            .lock()
            .iter()
            .map(|(r, e)| snapshot(r.clone(), e))
            .collect()
    }

    /// Number of services observed so far.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True iff no invocations have been observed.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Serialize every per-service record (totals, streaks, rolling
    /// windows) into a checkpoint, in sorted service order.
    pub fn export_state(&self, w: &mut Writer) {
        let entries = self.entries.lock();
        w.usize(entries.len());
        let mut packed = Vec::new();
        for (s, e) in entries.iter() {
            w.str(s.as_str())
                .u64(e.attempts)
                .u64(e.failures)
                .u64(e.consecutive_errors);
            match e.last_seen {
                Some(at) => w.bool(true).u64(at.ticks()),
                None => w.bool(false),
            };
            match &e.last_error {
                Some(msg) => w.bool(true).str(msg),
                None => w.bool(false),
            };
            // same wire format as one bool byte per outcome, written as a
            // single length-prefixed run instead of per-byte pushes
            packed.clear();
            packed.extend(e.recent.iter().map(|&ok| ok as u8));
            w.bytes(&packed);
        }
    }

    /// Restore records written by [`HealthTracker::export_state`],
    /// replacing all entries wholesale. Rolling windows longer than this
    /// tracker's configured window keep only their most recent outcomes.
    pub fn import_state(&self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let n = r.usize()?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let sref = ServiceRef::new(r.str()?);
            let attempts = r.u64()?;
            let failures = r.u64()?;
            let consecutive_errors = r.u64()?;
            let last_seen = if r.bool()? {
                Some(Instant(r.u64()?))
            } else {
                None
            };
            let last_error = if r.bool()? {
                Some(r.str()?.to_string())
            } else {
                None
            };
            let packed = r.bytes()?;
            let mut recent = VecDeque::with_capacity(packed.len());
            for &b in packed {
                recent.push_back(match b {
                    0 => false,
                    1 => true,
                    b => {
                        return Err(SnapshotError::Corrupt(format!("bad outcome byte {b}")));
                    }
                });
            }
            while recent.len() > self.window {
                recent.pop_front();
            }
            map.insert(
                sref,
                HealthEntry {
                    attempts,
                    failures,
                    consecutive_errors,
                    last_seen,
                    last_error,
                    recent,
                },
            );
        }
        *self.entries.lock() = map;
        Ok(())
    }
}

fn snapshot(reference: ServiceRef, e: &HealthEntry) -> ServiceHealth {
    let window_failures = e.recent.iter().filter(|ok| !**ok).count();
    ServiceHealth {
        reference,
        attempts: e.attempts,
        failures: e.failures,
        consecutive_errors: e.consecutive_errors,
        failure_rate: if e.recent.is_empty() {
            0.0
        } else {
            window_failures as f64 / e.recent.len() as f64
        },
        window_len: e.recent.len(),
        last_seen: e.last_seen,
        last_error: e.last_error.clone(),
    }
}

impl InvocationObserver for HealthTracker {
    fn observe_invocation(
        &self,
        service: &ServiceRef,
        _prototype: &str,
        at: Instant,
        _latency: Duration,
        error: Option<&EvalError>,
    ) {
        let message = error.map(|e| e.to_string());
        self.record(service, at, message.as_deref());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPolicy, FaultyService};
    use crate::registry::DynamicRegistry;
    use serena_core::prototype::examples as protos;
    use serena_core::service::{fixtures, Invoker};
    use serena_core::telemetry::InstrumentedInvoker;
    use serena_core::tuple::Tuple;

    #[test]
    fn rolling_window_and_consecutive_errors() {
        let tracker = HealthTracker::new(4);
        let s = ServiceRef::new("s");
        // 2 failures, then 2 successes, then 3 failures
        tracker.record(&s, Instant(0), Some("boom"));
        tracker.record(&s, Instant(1), Some("boom"));
        tracker.record(&s, Instant(2), None);
        tracker.record(&s, Instant(3), None);
        let h = tracker.health_of(&s).unwrap();
        assert_eq!(h.attempts, 4);
        assert_eq!(h.failures, 2);
        assert_eq!(h.consecutive_errors, 0);
        assert_eq!(h.failure_rate, 0.5);
        assert_eq!(h.status(), HealthStatus::Degraded);

        for t in 4..7 {
            tracker.record(&s, Instant(t), Some("gone"));
        }
        let h = tracker.health_of(&s).unwrap();
        // window of 4: [ok, fail, fail, fail]
        assert_eq!(h.failure_rate, 0.75);
        assert_eq!(h.consecutive_errors, 3);
        assert_eq!(h.status(), HealthStatus::Down);
        assert_eq!(h.last_seen, Some(Instant(6)));
        assert_eq!(h.last_error.as_deref(), Some("gone"));
    }

    /// Satellite (PR 3): an `Intermittent` fault policy produces exactly
    /// its duty-cycle failure rate in the rolling window, and the health
    /// report's `attempts` agrees with `FaultyService::attempts()`.
    #[test]
    fn intermittent_policy_failure_rate_window() {
        let faulty = FaultyService::new(
            fixtures::temperature_sensor(1),
            // cycle: 1 failure then 3 successes → 25% failure rate
            FaultPolicy::Intermittent { fail: 1, ok: 3 },
        );
        let reg = DynamicRegistry::new();
        reg.register("flaky", faulty.clone());

        let tracker = HealthTracker::new(16);
        let invoker = InstrumentedInvoker::new(&reg).with_observer(&tracker);
        let sref = ServiceRef::new("flaky");
        for t in 0..16u64 {
            let _ = invoker.invoke(
                &protos::get_temperature(),
                &sref,
                &Tuple::empty(),
                Instant(t),
            );
        }

        let h = tracker.health_of(&sref).unwrap();
        assert_eq!(h.attempts, 16);
        assert_eq!(h.attempts, faulty.attempts());
        assert_eq!(h.failures, 4);
        assert_eq!(h.failure_rate, 0.25);
        assert_eq!(h.window_len, 16);
        assert_eq!(h.status(), HealthStatus::Degraded);
        assert!(h.last_error.is_some());
    }

    #[test]
    fn health_state_round_trips_through_snapshot() {
        let tracker = HealthTracker::new(4);
        let s = ServiceRef::new("s");
        tracker.record(&s, Instant(0), Some("boom"));
        tracker.record(&s, Instant(1), None);
        tracker.record(&s, Instant(2), Some("boom again"));
        tracker.record(&ServiceRef::new("quiet"), Instant(2), None);

        let mut w = Writer::new();
        tracker.export_state(&mut w);
        let bytes = w.into_bytes();

        let restored = HealthTracker::new(4);
        restored.import_state(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(restored.report(), tracker.report());
        // narrower windows keep the most recent outcomes
        let narrow = HealthTracker::new(2);
        narrow.import_state(&mut Reader::new(&bytes)).unwrap();
        let h = narrow.health_of(&s).unwrap();
        assert_eq!(h.window_len, 2);
        assert_eq!(h.failure_rate, 0.5); // [ok, fail]
    }

    #[test]
    fn report_is_sorted_and_healthy_stays_healthy() {
        let tracker = HealthTracker::default();
        assert!(tracker.is_empty());
        tracker.record(&ServiceRef::new("zeta"), Instant(0), None);
        tracker.record(&ServiceRef::new("alpha"), Instant(0), None);
        let report = tracker.report();
        assert_eq!(tracker.len(), 2);
        assert_eq!(report[0].reference.as_str(), "alpha");
        assert_eq!(report[1].reference.as_str(), "zeta");
        assert!(report.iter().all(|h| h.status() == HealthStatus::Healthy));
    }
}
