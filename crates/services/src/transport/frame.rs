//! The serena node-to-node frame protocol.
//!
//! Every message between PEMS nodes is one *frame*:
//!
//! ```text
//! +----------+------------+---------------------------------------+
//! | "SRNF"   | len: u32LE | payload (snapshot header ++ tag ++ …) |
//! +----------+------------+---------------------------------------+
//! ```
//!
//! The payload is encoded with the PR 5 `serena-core::snapshot` codec and
//! begins with its `MAGIC ++ VERSION` header, so version skew between
//! nodes is caught by the same machinery that guards checkpoint files.
//! Payloads longer than [`MAX_FRAME_LEN`] are rejected *before* any
//! allocation; truncated or garbage input decodes to a typed
//! [`TransportError`], never a panic.
//!
//! β results travel *structurally*: a remote invocation error is relayed
//! as the original [`EvalError`] variant, not a display string, so the
//! error multiset a query observes is byte-identical whether the provider
//! was local or remote (no nested "invocation of … failed: invocation of
//! … failed" wrapping).

use std::io::{Read, Write};
use std::sync::Arc;

use serena_core::attr::AttrName;
use serena_core::error::EvalError;
use serena_core::prototype::{Prototype, RelationSchema};
use serena_core::snapshot::{read_header, write_header, Reader, SnapshotError, Writer};
use serena_core::tuple::Tuple;
use serena_core::value::{DataType, ServiceRef, Value};

use super::TransportError;

/// Frame magic — distinct from the snapshot magic so a checkpoint file
/// piped at a listener is rejected at the first four bytes.
pub const FRAME_MAGIC: [u8; 4] = *b"SRNF";

/// Maximum accepted payload length (64 MiB). Covers any realistic
/// checkpoint replication frame while bounding what a hostile peer can
/// make the receiver allocate.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// A service advertisement: everything a peer needs to build a local
/// proxy — reference, origin LERM, full prototypes (names *and* schemas,
/// so the proxy validates β results locally exactly like a local
/// service), and discovery metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceAd {
    /// The advertised service's reference.
    pub reference: ServiceRef,
    /// The Local ERM that announced it on its home node.
    pub origin: String,
    /// The prototypes it implements, schemas included.
    pub prototypes: Vec<Arc<Prototype>>,
    /// Discovery metadata (`key`, value) pairs, sorted by key.
    pub metadata: Vec<(String, Value)>,
}

/// A directory change relayed to peers.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// A service joined the remote node.
    Joined(ServiceAd),
    /// A service left the remote node.
    Left(ServiceRef),
}

/// One protocol message. Tags are part of the wire format; new variants
/// append, existing tags never change meaning.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client hello, carrying the caller's node id.
    Hello {
        /// The connecting node's id.
        node: String,
    },
    /// Server reply to [`Frame::Hello`], carrying the serving node's id.
    Welcome {
        /// The serving node's id.
        node: String,
    },
    /// Request the full current service listing.
    ListServices,
    /// Reply to [`Frame::ListServices`].
    ServiceList {
        /// The server's event-log position at listing time; poll from
        /// here to observe every later change exactly once.
        seq: u64,
        /// All services currently hosted by the node.
        services: Vec<ServiceAd>,
    },
    /// Request directory events after log position `after`. A successful
    /// round-trip doubles as the liveness heartbeat.
    PollEvents {
        /// The caller's cursor into the server's event log.
        after: u64,
    },
    /// Reply to [`Frame::PollEvents`].
    Events {
        /// The caller's next cursor.
        next: u64,
        /// Events logged since the request's `after`.
        events: Vec<WireEvent>,
    },
    /// A β invocation relayed to the node hosting the service.
    Invoke {
        /// The target service's reference.
        service: ServiceRef,
        /// Name of the prototype to invoke (the server resolves the full
        /// prototype from its own registration — schemas stay local).
        prototype: String,
        /// The input binding tuple.
        input: Tuple,
        /// The caller's logical instant.
        at: u64,
    },
    /// Successful reply to [`Frame::Invoke`].
    InvokeOk {
        /// The output tuples.
        tuples: Vec<Tuple>,
    },
    /// Failed reply to [`Frame::Invoke`], relaying the structural error.
    InvokeErr {
        /// The evaluation error exactly as a local caller would see it.
        error: EvalError,
    },
    /// Liveness probe (used where no poll traffic flows, e.g. standbys).
    Heartbeat {
        /// The sender's logical instant.
        at: u64,
    },
    /// Reply to [`Frame::Heartbeat`].
    HeartbeatAck {
        /// Echo of the probe's instant.
        at: u64,
        /// Number of services the node currently hosts (cheap sanity
        /// signal for monitors).
        services: u64,
    },
    /// A replicated checkpoint pushed to a standby peer.
    Checkpoint {
        /// The logical tick the checkpoint was taken at.
        tick: u64,
        /// The full snapshot bytes (the PR 5 checkpoint format).
        bytes: Vec<u8>,
    },
    /// Standby acknowledgement of [`Frame::Checkpoint`].
    CheckpointAck {
        /// Echo of the replicated tick.
        tick: u64,
    },
    /// Polite shutdown; the receiver closes the connection.
    Bye,
}

fn corrupt(e: SnapshotError) -> TransportError {
    TransportError::Malformed(e.to_string())
}

fn write_data_type(w: &mut Writer, t: DataType) {
    w.u8(match t {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Real => 2,
        DataType::Str => 3,
        DataType::Blob => 4,
        DataType::Service => 5,
    });
}

fn read_data_type(r: &mut Reader<'_>) -> Result<DataType, TransportError> {
    match r.u8().map_err(corrupt)? {
        0 => Ok(DataType::Bool),
        1 => Ok(DataType::Int),
        2 => Ok(DataType::Real),
        3 => Ok(DataType::Str),
        4 => Ok(DataType::Blob),
        5 => Ok(DataType::Service),
        t => Err(TransportError::Malformed(format!(
            "unknown data type tag {t}"
        ))),
    }
}

fn write_schema(w: &mut Writer, s: &RelationSchema) {
    w.usize(s.arity());
    for (name, t) in s.attrs() {
        w.str(name.as_str());
        write_data_type(w, *t);
    }
}

fn read_schema(r: &mut Reader<'_>) -> Result<RelationSchema, TransportError> {
    let n = r.usize().map_err(corrupt)?;
    let mut attrs = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        let name = AttrName::new(r.str().map_err(corrupt)?);
        let t = read_data_type(r)?;
        attrs.push((name, t));
    }
    RelationSchema::new(attrs).map_err(|e| TransportError::Malformed(e.to_string()))
}

fn write_prototype(w: &mut Writer, p: &Prototype) {
    w.str(p.name()).bool(p.is_active());
    write_schema(w, p.input());
    write_schema(w, p.output());
}

fn read_prototype(r: &mut Reader<'_>) -> Result<Arc<Prototype>, TransportError> {
    let name = r.str().map_err(corrupt)?.to_string();
    let active = r.bool().map_err(corrupt)?;
    let input = read_schema(r)?;
    let output = read_schema(r)?;
    Prototype::new(name, input, output, active)
        .map_err(|e| TransportError::Malformed(e.to_string()))
}

fn write_ad(w: &mut Writer, ad: &ServiceAd) {
    w.str(ad.reference.as_str()).str(&ad.origin);
    w.usize(ad.prototypes.len());
    for p in &ad.prototypes {
        write_prototype(w, p);
    }
    w.usize(ad.metadata.len());
    for (k, v) in &ad.metadata {
        w.str(k).value(v);
    }
}

fn read_ad(r: &mut Reader<'_>) -> Result<ServiceAd, TransportError> {
    let reference = ServiceRef::new(r.str().map_err(corrupt)?);
    let origin = r.str().map_err(corrupt)?.to_string();
    let np = r.usize().map_err(corrupt)?;
    let mut prototypes = Vec::with_capacity(np.min(r.remaining()));
    for _ in 0..np {
        prototypes.push(read_prototype(r)?);
    }
    let nm = r.usize().map_err(corrupt)?;
    let mut metadata = Vec::with_capacity(nm.min(r.remaining()));
    for _ in 0..nm {
        let k = r.str().map_err(corrupt)?.to_string();
        let v = r.value().map_err(corrupt)?;
        metadata.push((k, v));
    }
    Ok(ServiceAd {
        reference,
        origin,
        prototypes,
        metadata,
    })
}

fn write_event(w: &mut Writer, ev: &WireEvent) {
    match ev {
        WireEvent::Joined(ad) => {
            w.u8(0);
            write_ad(w, ad);
        }
        WireEvent::Left(reference) => {
            w.u8(1).str(reference.as_str());
        }
    }
}

fn read_event(r: &mut Reader<'_>) -> Result<WireEvent, TransportError> {
    match r.u8().map_err(corrupt)? {
        0 => Ok(WireEvent::Joined(read_ad(r)?)),
        1 => Ok(WireEvent::Left(ServiceRef::new(r.str().map_err(corrupt)?))),
        t => Err(TransportError::Malformed(format!("unknown event tag {t}"))),
    }
}

/// Encode an [`EvalError`] structurally. `Plan` errors cannot arise from
/// a relayed β call, so they are the one variant carried as a display
/// string (decoding to [`EvalError::Value`]).
fn write_eval_error(w: &mut Writer, e: &EvalError) {
    match e {
        EvalError::UnknownService { reference } => {
            w.u8(0).str(reference);
        }
        EvalError::PrototypeNotImplemented { service, prototype } => {
            w.u8(1).str(service).str(prototype);
        }
        EvalError::InvocationFailed {
            service,
            prototype,
            reason,
        } => {
            w.u8(2).str(service).str(prototype).str(reason);
        }
        EvalError::MalformedInvocationResult {
            service,
            prototype,
            detail,
        } => {
            w.u8(3).str(service).str(prototype).str(detail);
        }
        EvalError::CircuitOpen { service } => {
            w.u8(4).str(service);
        }
        EvalError::DeadlineExceeded { service, prototype } => {
            w.u8(5).str(service).str(prototype);
        }
        EvalError::Panicked {
            service,
            prototype,
            reason,
        } => {
            w.u8(6).str(service).str(prototype).str(reason);
        }
        EvalError::RemoteUnavailable {
            service,
            prototype,
            node,
            reason,
        } => {
            w.u8(7).str(service).str(prototype).str(node).str(reason);
        }
        EvalError::TupleSchemaMismatch { relation, detail } => {
            w.u8(8).str(relation).str(detail);
        }
        EvalError::Value(detail) => {
            w.u8(9).str(detail);
        }
        EvalError::Plan(e) => {
            w.u8(10).str(&e.to_string());
        }
    }
}

fn read_eval_error(r: &mut Reader<'_>) -> Result<EvalError, TransportError> {
    let s = |r: &mut Reader<'_>| -> Result<String, TransportError> {
        Ok(r.str().map_err(corrupt)?.to_string())
    };
    match r.u8().map_err(corrupt)? {
        0 => Ok(EvalError::UnknownService { reference: s(r)? }),
        1 => Ok(EvalError::PrototypeNotImplemented {
            service: s(r)?,
            prototype: s(r)?,
        }),
        2 => Ok(EvalError::InvocationFailed {
            service: s(r)?,
            prototype: s(r)?,
            reason: s(r)?,
        }),
        3 => Ok(EvalError::MalformedInvocationResult {
            service: s(r)?,
            prototype: s(r)?,
            detail: s(r)?,
        }),
        4 => Ok(EvalError::CircuitOpen { service: s(r)? }),
        5 => Ok(EvalError::DeadlineExceeded {
            service: s(r)?,
            prototype: s(r)?,
        }),
        6 => Ok(EvalError::Panicked {
            service: s(r)?,
            prototype: s(r)?,
            reason: s(r)?,
        }),
        7 => Ok(EvalError::RemoteUnavailable {
            service: s(r)?,
            prototype: s(r)?,
            node: s(r)?,
            reason: s(r)?,
        }),
        8 => Ok(EvalError::TupleSchemaMismatch {
            relation: s(r)?,
            detail: s(r)?,
        }),
        9 => Ok(EvalError::Value(s(r)?)),
        10 => Ok(EvalError::Value(format!("plan error: {}", s(r)?))),
        t => Err(TransportError::Malformed(format!("unknown error tag {t}"))),
    }
}

impl Frame {
    /// Encode this frame to its full wire form: `SRNF ++ len ++ payload`.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        write_header(&mut w);
        match self {
            Frame::Hello { node } => {
                w.u8(0).str(node);
            }
            Frame::Welcome { node } => {
                w.u8(1).str(node);
            }
            Frame::ListServices => {
                w.u8(2);
            }
            Frame::ServiceList { seq, services } => {
                w.u8(3).u64(*seq).usize(services.len());
                for ad in services {
                    write_ad(&mut w, ad);
                }
            }
            Frame::PollEvents { after } => {
                w.u8(4).u64(*after);
            }
            Frame::Events { next, events } => {
                w.u8(5).u64(*next).usize(events.len());
                for ev in events {
                    write_event(&mut w, ev);
                }
            }
            Frame::Invoke {
                service,
                prototype,
                input,
                at,
            } => {
                w.u8(6)
                    .str(service.as_str())
                    .str(prototype)
                    .tuple(input)
                    .u64(*at);
            }
            Frame::InvokeOk { tuples } => {
                w.u8(7).usize(tuples.len());
                for t in tuples {
                    w.tuple(t);
                }
            }
            Frame::InvokeErr { error } => {
                w.u8(8);
                write_eval_error(&mut w, error);
            }
            Frame::Heartbeat { at } => {
                w.u8(9).u64(*at);
            }
            Frame::HeartbeatAck { at, services } => {
                w.u8(10).u64(*at).u64(*services);
            }
            Frame::Checkpoint { tick, bytes } => {
                w.u8(11).u64(*tick).bytes(bytes);
            }
            Frame::CheckpointAck { tick } => {
                w.u8(12).u64(*tick);
            }
            Frame::Bye => {
                w.u8(13);
            }
        }
        let payload = w.into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(&FRAME_MAGIC);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a frame *payload* (the bytes after magic + length). The
    /// entire payload must be consumed — trailing bytes are malformed.
    pub fn from_payload(payload: &[u8]) -> Result<Frame, TransportError> {
        let mut r = Reader::new(payload);
        read_header(&mut r).map_err(corrupt)?;
        let frame = match r.u8().map_err(corrupt)? {
            0 => Frame::Hello {
                node: r.str().map_err(corrupt)?.to_string(),
            },
            1 => Frame::Welcome {
                node: r.str().map_err(corrupt)?.to_string(),
            },
            2 => Frame::ListServices,
            3 => {
                let seq = r.u64().map_err(corrupt)?;
                let n = r.usize().map_err(corrupt)?;
                let mut services = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    services.push(read_ad(&mut r)?);
                }
                Frame::ServiceList { seq, services }
            }
            4 => Frame::PollEvents {
                after: r.u64().map_err(corrupt)?,
            },
            5 => {
                let next = r.u64().map_err(corrupt)?;
                let n = r.usize().map_err(corrupt)?;
                let mut events = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    events.push(read_event(&mut r)?);
                }
                Frame::Events { next, events }
            }
            6 => Frame::Invoke {
                service: ServiceRef::new(r.str().map_err(corrupt)?),
                prototype: r.str().map_err(corrupt)?.to_string(),
                input: r.tuple().map_err(corrupt)?,
                at: r.u64().map_err(corrupt)?,
            },
            7 => {
                let n = r.usize().map_err(corrupt)?;
                let mut tuples = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    tuples.push(r.tuple().map_err(corrupt)?);
                }
                Frame::InvokeOk { tuples }
            }
            8 => Frame::InvokeErr {
                error: read_eval_error(&mut r)?,
            },
            9 => Frame::Heartbeat {
                at: r.u64().map_err(corrupt)?,
            },
            10 => Frame::HeartbeatAck {
                at: r.u64().map_err(corrupt)?,
                services: r.u64().map_err(corrupt)?,
            },
            11 => Frame::Checkpoint {
                tick: r.u64().map_err(corrupt)?,
                bytes: r.bytes().map_err(corrupt)?.to_vec(),
            },
            12 => Frame::CheckpointAck {
                tick: r.u64().map_err(corrupt)?,
            },
            13 => Frame::Bye,
            t => return Err(TransportError::Malformed(format!("unknown frame tag {t}"))),
        };
        if !r.is_at_end() {
            return Err(TransportError::Malformed(format!(
                "{} trailing bytes after frame",
                r.remaining()
            )));
        }
        Ok(frame)
    }

    /// Decode a frame from its full wire form (magic + length + payload,
    /// exactly one frame). Used by the in-proc transport, so in-proc
    /// traffic exercises the byte-level format end to end.
    pub fn from_wire(bytes: &[u8]) -> Result<Frame, TransportError> {
        let mut cursor = bytes;
        let frame = read_from(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(TransportError::Malformed(format!(
                "{} trailing bytes after frame",
                cursor.len()
            )));
        }
        Ok(frame)
    }
}

/// Read one frame from a blocking byte stream. Clean EOF *between* frames
/// is [`TransportError::Closed`]; EOF mid-frame is
/// [`TransportError::Truncated`].
pub fn read_from(stream: &mut impl Read) -> Result<Frame, TransportError> {
    let mut head = [0u8; 8];
    let mut filled = 0;
    while filled < head.len() {
        match stream.read(&mut head[filled..]) {
            Ok(0) if filled == 0 => return Err(TransportError::Closed),
            Ok(0) => {
                return Err(TransportError::Truncated {
                    expected: 8 - filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TransportError::Io(e.to_string())),
        }
    }
    if head[..4] != FRAME_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&head[..4]);
        return Err(TransportError::BadMagic { found });
    }
    let len = u32::from_le_bytes([head[4], head[5], head[6], head[7]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(TransportError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match stream.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(TransportError::Truncated {
                    expected: len - got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(TransportError::Io(e.to_string())),
        }
    }
    Frame::from_payload(&payload)
}

/// Write one frame to a blocking byte stream.
pub fn write_to(stream: &mut impl Write, frame: &Frame) -> Result<(), TransportError> {
    let bytes = frame.to_wire();
    stream
        .write_all(&bytes)
        .and_then(|_| stream.flush())
        .map_err(|e| TransportError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::prototype::examples as protos;

    fn sample_ad() -> ServiceAd {
        ServiceAd {
            reference: ServiceRef::new("sensor01"),
            origin: "building".into(),
            prototypes: vec![protos::get_temperature()],
            metadata: vec![
                ("area".into(), Value::str("office")),
                ("floor".into(), Value::Int(3)),
            ],
        }
    }

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { node: "a".into() },
            Frame::Welcome {
                node: "host".into(),
            },
            Frame::ListServices,
            Frame::ServiceList {
                seq: 17,
                services: vec![sample_ad()],
            },
            Frame::PollEvents { after: 3 },
            Frame::Events {
                next: 5,
                events: vec![
                    WireEvent::Joined(sample_ad()),
                    WireEvent::Left(ServiceRef::new("sensor01")),
                ],
            },
            Frame::Invoke {
                service: ServiceRef::new("sensor01"),
                prototype: "getTemperature".into(),
                input: Tuple::empty(),
                at: 42,
            },
            Frame::InvokeOk {
                tuples: vec![Tuple::new(vec![Value::Real(21.5)])],
            },
            Frame::InvokeErr {
                error: EvalError::Panicked {
                    service: "sensor01".into(),
                    prototype: "getTemperature".into(),
                    reason: "boom".into(),
                },
            },
            Frame::Heartbeat { at: 7 },
            Frame::HeartbeatAck {
                at: 7,
                services: 12,
            },
            Frame::Checkpoint {
                tick: 9,
                bytes: vec![1, 2, 3, 4],
            },
            Frame::CheckpointAck { tick: 9 },
            Frame::Bye,
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in all_frames() {
            let wire = frame.to_wire();
            assert_eq!(Frame::from_wire(&wire).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn every_eval_error_round_trips_structurally() {
        let errors = vec![
            EvalError::UnknownService {
                reference: "x".into(),
            },
            EvalError::PrototypeNotImplemented {
                service: "s".into(),
                prototype: "p".into(),
            },
            EvalError::InvocationFailed {
                service: "s".into(),
                prototype: "p".into(),
                reason: "r".into(),
            },
            EvalError::MalformedInvocationResult {
                service: "s".into(),
                prototype: "p".into(),
                detail: "d".into(),
            },
            EvalError::CircuitOpen {
                service: "s".into(),
            },
            EvalError::DeadlineExceeded {
                service: "s".into(),
                prototype: "p".into(),
            },
            EvalError::Panicked {
                service: "s".into(),
                prototype: "p".into(),
                reason: "r".into(),
            },
            EvalError::RemoteUnavailable {
                service: "s".into(),
                prototype: "p".into(),
                node: "n".into(),
                reason: "r".into(),
            },
            EvalError::TupleSchemaMismatch {
                relation: "r".into(),
                detail: "d".into(),
            },
            EvalError::Value("v".into()),
        ];
        for error in errors {
            let wire = Frame::InvokeErr {
                error: error.clone(),
            }
            .to_wire();
            assert_eq!(Frame::from_wire(&wire).unwrap(), Frame::InvokeErr { error },);
        }
    }

    #[test]
    fn frames_round_trip_through_a_byte_stream() {
        let mut buf: Vec<u8> = Vec::new();
        for frame in all_frames() {
            write_to(&mut buf, &frame).unwrap();
        }
        let mut cursor = &buf[..];
        for frame in all_frames() {
            assert_eq!(read_from(&mut cursor).unwrap(), frame);
        }
        assert_eq!(read_from(&mut cursor), Err(TransportError::Closed));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut wire = Frame::Bye.to_wire();
        wire[0..4].copy_from_slice(b"HTTP");
        assert_eq!(
            Frame::from_wire(&wire),
            Err(TransportError::BadMagic { found: *b"HTTP" })
        );
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = &wire[..];
        assert_eq!(
            read_from(&mut cursor),
            Err(TransportError::FrameTooLarge {
                len: u32::MAX as usize,
                max: MAX_FRAME_LEN,
            })
        );
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let wire = Frame::Heartbeat { at: 7 }.to_wire();
        // cut mid-header
        let mut cursor = &wire[..3];
        assert!(matches!(
            read_from(&mut cursor),
            Err(TransportError::Truncated { .. })
        ));
        // cut mid-payload
        let mut cursor = &wire[..wire.len() - 2];
        assert!(matches!(
            read_from(&mut cursor),
            Err(TransportError::Truncated { .. })
        ));
    }

    #[test]
    fn garbage_payload_is_malformed_not_panic() {
        // valid magic + length, garbage payload
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC);
        wire.extend_from_slice(&8u32.to_le_bytes());
        wire.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02, 0x03]);
        assert!(matches!(
            Frame::from_wire(&wire),
            Err(TransportError::Malformed(_))
        ));
        // unknown frame tag after a valid snapshot header
        let mut w = Writer::new();
        write_header(&mut w);
        w.u8(200);
        let payload = w.into_bytes();
        assert!(matches!(
            Frame::from_payload(&payload),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut wire = Frame::Bye.to_wire();
        // append a byte and fix up the declared length
        wire.push(0xAA);
        let len = (wire.len() - 8) as u32;
        wire[4..8].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            Frame::from_wire(&wire),
            Err(TransportError::Malformed(_))
        ));
    }

    #[test]
    fn plan_errors_degrade_to_value_strings() {
        // Plan errors carry structure that never crosses the wire; they
        // degrade to an EvalError::Value carrying the display string.
        let mut w = Writer::new();
        write_header(&mut w);
        w.u8(8); // InvokeErr
        w.u8(10).str("unknown relation `ghosts`"); // Plan wire tag
        let payload = w.into_bytes();
        assert_eq!(
            Frame::from_payload(&payload).unwrap(),
            Frame::InvokeErr {
                error: EvalError::Value("plan error: unknown relation `ghosts`".into())
            }
        );
    }
}
