//! Transport abstraction for distributed PEMS (Fig. 1's network layer).
//!
//! §5.1 of the paper runs discovery and β invocation over a real
//! OSGi/UPnP network; every prior PR simulated that in-process. This
//! module introduces the seam that makes the network real without
//! giving up the determinism contract:
//!
//! * [`Transport`] — listen/connect by address string, yielding framed,
//!   blocking [`Connection`]s that speak [`Frame`]s (length-prefixed,
//!   snapshot-codec payloads — see [`frame`]);
//! * [`InProcTransport`] — an in-memory hub of
//!   named endpoints. Today's deterministic behavior, and the test
//!   default: frames still round-trip through the full codec, so the
//!   wire format is exercised on every in-proc call;
//! * [`SocketTransport`] — TCP and Unix-domain
//!   sockets (`tcp:host:port` / `uds:/path`) via `std::net`, nothing
//!   non-std.
//!
//! Address strings are scheme-prefixed: `inproc:<name>`, `uds:<path>`,
//! `tcp:<host>:<port>`. [`from_env`] selects a transport from the
//! `SERENA_TRANSPORT` environment variable (`inproc` — a process-wide
//! shared hub — or `socket`).
//!
//! Malformed traffic is never a panic: oversized, truncated or garbage
//! frames surface as typed [`TransportError`]s (see the hostile-input
//! tests in [`frame`]).

pub mod frame;
pub mod inproc;
pub mod socket;

pub use frame::{Frame, ServiceAd, WireEvent, MAX_FRAME_LEN};
pub use inproc::InProcTransport;
pub use socket::SocketTransport;

use std::fmt;
use std::sync::Arc;

/// Errors surfaced by transports and the frame codec. Every failure mode
/// of a hostile or flaky peer maps to a typed variant; none panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The address string does not parse, or its scheme is not served by
    /// this transport (e.g. `uds:` handed to [`InProcTransport`]).
    AddressUnsupported {
        /// The offending address.
        addr: String,
        /// The transport that rejected it.
        transport: &'static str,
    },
    /// The peer closed the connection (clean EOF between frames), or the
    /// endpoint is gone.
    Closed,
    /// An operating-system level I/O failure (connect refused, reset, …).
    Io(String),
    /// An incoming frame announced a payload larger than the receiver's
    /// limit — rejected *before* allocating.
    FrameTooLarge {
        /// The announced payload length.
        len: usize,
        /// The receiver's limit.
        max: usize,
    },
    /// The stream ended mid-frame: the header promised more payload bytes
    /// than arrived.
    Truncated {
        /// Bytes the frame header promised.
        expected: usize,
    },
    /// The 4 magic bytes prefixing every frame were wrong — the peer is
    /// not speaking the serena frame protocol.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The payload length/magic were fine but the snapshot-codec payload
    /// did not decode (garbage, version skew, trailing bytes, unknown
    /// frame tag).
    Malformed(String),
    /// A frame arrived that is valid but unexpected in the current
    /// protocol state (e.g. a response tag where a request was required).
    Protocol(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::AddressUnsupported { addr, transport } => {
                write!(f, "address `{addr}` not supported by {transport} transport")
            }
            TransportError::Closed => write!(f, "connection closed by peer"),
            TransportError::Io(d) => write!(f, "transport i/o error: {d}"),
            TransportError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            TransportError::Truncated { expected } => {
                write!(
                    f,
                    "stream truncated mid-frame ({expected} payload bytes promised)"
                )
            }
            TransportError::BadMagic { found } => {
                write!(
                    f,
                    "bad frame magic {found:?} (peer is not speaking the serena protocol)"
                )
            }
            TransportError::Malformed(d) => write!(f, "malformed frame payload: {d}"),
            TransportError::Protocol(d) => write!(f, "protocol violation: {d}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A bidirectional, blocking, framed byte channel to one peer. One
/// request/response exchange at a time per connection; callers needing
/// concurrency open several connections (see
/// [`RemoteNodeClient`](crate::node::RemoteNodeClient)'s pool).
pub trait Connection: Send {
    /// Send one frame (blocking until written).
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError>;
    /// Receive the next frame (blocking). [`TransportError::Closed`] on
    /// clean EOF between frames.
    fn recv(&mut self) -> Result<Frame, TransportError>;
    /// Human-readable peer address, for diagnostics.
    fn peer_addr(&self) -> String;
}

/// A bound endpoint accepting inbound [`Connection`]s.
pub trait Listener: Send {
    /// Accept the next inbound connection (blocking).
    /// [`TransportError::Closed`] once the endpoint is shut down.
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError>;
    /// The canonical address of this endpoint — always re-connectable via
    /// [`Transport::connect`] (e.g. `tcp:127.0.0.1:<actual port>` after
    /// binding port 0).
    fn local_addr(&self) -> String;
}

/// A way of reaching other PEMS nodes: bind listeners and open
/// connections by scheme-prefixed address.
pub trait Transport: Send + Sync {
    /// The scheme(s) this transport serves, for diagnostics.
    fn name(&self) -> &'static str;
    /// Bind a listening endpoint at `addr`.
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>, TransportError>;
    /// Open a connection to the endpoint at `addr`.
    fn connect(&self, addr: &str) -> Result<Box<dyn Connection>, TransportError>;
}

impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>, TransportError> {
        (**self).listen(addr)
    }
    fn connect(&self, addr: &str) -> Result<Box<dyn Connection>, TransportError> {
        (**self).connect(addr)
    }
}

/// Select a transport from the `SERENA_TRANSPORT` environment variable:
/// `socket` (or `uds` / `tcp`) yields a [`SocketTransport`]; anything
/// else — including unset — yields the process-wide shared
/// [`InProcTransport`] hub, so co-located tools (shell, tests) find each
/// other by `inproc:<name>`.
pub fn from_env() -> Arc<dyn Transport> {
    match std::env::var("SERENA_TRANSPORT").as_deref() {
        Ok("socket") | Ok("uds") | Ok("tcp") | Ok("unix") => Arc::new(SocketTransport::new()),
        _ => Arc::new(InProcTransport::shared()),
    }
}

/// Split `addr` into `(scheme, rest)` at the first `:`.
pub(crate) fn split_scheme(addr: &str) -> Option<(&str, &str)> {
    addr.split_once(':')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_detail() {
        let cases: Vec<(TransportError, &str)> = vec![
            (
                TransportError::AddressUnsupported {
                    addr: "carrier-pigeon:coop7".into(),
                    transport: "socket",
                },
                "carrier-pigeon",
            ),
            (TransportError::Closed, "closed"),
            (TransportError::Io("refused".into()), "refused"),
            (
                TransportError::FrameTooLarge { len: 99, max: 10 },
                "99 bytes",
            ),
            (TransportError::Truncated { expected: 7 }, "truncated"),
            (TransportError::BadMagic { found: *b"HTTP" }, "magic"),
            (TransportError::Malformed("trailing".into()), "trailing"),
            (TransportError::Protocol("bad state".into()), "bad state"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn env_selection_defaults_to_inproc() {
        // without SERENA_TRANSPORT the shared in-proc hub is returned
        if std::env::var("SERENA_TRANSPORT").is_err() {
            assert_eq!(from_env().name(), "inproc");
        }
    }
}
