//! In-process transport: a hub of named endpoints connected by channels.
//!
//! This is the deterministic default. Connections are pairs of
//! `std::sync::mpsc` byte channels, but frames still cross them in full
//! wire form ([`Frame::to_wire`]/[`Frame::from_wire`]), so every in-proc
//! call exercises the exact byte format the socket transport puts on a
//! wire — codec regressions cannot hide behind the test default.
//!
//! Endpoints live per *hub*: two [`InProcTransport`] values created with
//! [`InProcTransport::new`] are isolated worlds (tests can't collide),
//! while [`InProcTransport::shared`] returns the process-wide hub that
//! co-located tools (e.g. the shell and a peer started from it) share.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, OnceLock};

use serena_core::sync::Mutex;

use super::frame::Frame;
use super::{split_scheme, Connection, Listener, Transport, TransportError};

struct Registration {
    id: u64,
    inbound: Sender<InProcConnection>,
}

#[derive(Default)]
struct Hub {
    endpoints: Mutex<HashMap<String, Registration>>,
    next_id: AtomicU64,
}

/// The in-memory transport (scheme `inproc:<name>`).
#[derive(Clone, Default)]
pub struct InProcTransport {
    hub: Arc<Hub>,
}

impl InProcTransport {
    /// A fresh, isolated hub.
    pub fn new() -> Self {
        InProcTransport::default()
    }

    /// The process-wide shared hub.
    pub fn shared() -> Self {
        static SHARED: OnceLock<InProcTransport> = OnceLock::new();
        SHARED.get_or_init(InProcTransport::new).clone()
    }

    fn endpoint_name<'a>(&self, addr: &'a str) -> Result<&'a str, TransportError> {
        match split_scheme(addr) {
            Some(("inproc", name)) if !name.is_empty() => Ok(name),
            _ => Err(TransportError::AddressUnsupported {
                addr: addr.to_string(),
                transport: "inproc",
            }),
        }
    }
}

impl Transport for InProcTransport {
    fn name(&self) -> &'static str {
        "inproc"
    }

    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>, TransportError> {
        let name = self.endpoint_name(addr)?.to_string();
        let (tx, rx) = channel();
        let id = self.hub.next_id.fetch_add(1, Ordering::Relaxed);
        // last bind wins, mirroring a socket rebinding a freed address
        self.hub
            .endpoints
            .lock()
            .insert(name.clone(), Registration { id, inbound: tx });
        Ok(Box::new(InProcListener {
            hub: Arc::clone(&self.hub),
            name,
            id,
            inbound: rx,
        }))
    }

    fn connect(&self, addr: &str) -> Result<Box<dyn Connection>, TransportError> {
        let name = self.endpoint_name(addr)?;
        let registration = self
            .hub
            .endpoints
            .lock()
            .get(name)
            .map(|r| r.inbound.clone())
            .ok_or_else(|| TransportError::Io(format!("no inproc endpoint `{name}`")))?;
        let (to_server, server_rx) = channel();
        let (to_client, client_rx) = channel();
        let server_end = InProcConnection {
            tx: to_client,
            rx: server_rx,
            peer: format!("inproc:{name}#client"),
        };
        registration
            .send(server_end)
            .map_err(|_| TransportError::Io(format!("inproc endpoint `{name}` is gone")))?;
        Ok(Box::new(InProcConnection {
            tx: to_server,
            rx: client_rx,
            peer: addr.to_string(),
        }))
    }
}

struct InProcListener {
    hub: Arc<Hub>,
    name: String,
    id: u64,
    inbound: Receiver<InProcConnection>,
}

impl Listener for InProcListener {
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError> {
        self.inbound
            .recv()
            .map(|c| Box::new(c) as Box<dyn Connection>)
            .map_err(|_| TransportError::Closed)
    }

    fn local_addr(&self) -> String {
        format!("inproc:{}", self.name)
    }
}

impl Drop for InProcListener {
    fn drop(&mut self) {
        let mut endpoints = self.hub.endpoints.lock();
        // deregister only if the name still points at *this* listener
        // (a newer bind may have taken the name over — leave it alone)
        if endpoints.get(&self.name).is_some_and(|r| r.id == self.id) {
            endpoints.remove(&self.name);
        }
    }
}

struct InProcConnection {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    peer: String,
}

impl Connection for InProcConnection {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        self.tx
            .send(frame.to_wire())
            .map_err(|_| TransportError::Closed)
    }

    fn recv(&mut self) -> Result<Frame, TransportError> {
        let bytes = self.rx.recv().map_err(|_| TransportError::Closed)?;
        Frame::from_wire(&bytes)
    }

    fn peer_addr(&self) -> String {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_connect_and_exchange_frames() {
        let t = InProcTransport::new();
        let listener = t.listen("inproc:node-a").unwrap();
        assert_eq!(listener.local_addr(), "inproc:node-a");

        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let frame = conn.recv().unwrap();
            assert_eq!(frame, Frame::Hello { node: "b".into() });
            conn.send(&Frame::Welcome { node: "a".into() }).unwrap();
        });

        let mut conn = t.connect("inproc:node-a").unwrap();
        conn.send(&Frame::Hello { node: "b".into() }).unwrap();
        assert_eq!(conn.recv().unwrap(), Frame::Welcome { node: "a".into() });
        server.join().unwrap();
    }

    #[test]
    fn connect_to_missing_endpoint_fails_typed() {
        let t = InProcTransport::new();
        assert!(matches!(
            t.connect("inproc:ghost"),
            Err(TransportError::Io(_))
        ));
        assert!(matches!(
            t.connect("uds:/tmp/nope"),
            Err(TransportError::AddressUnsupported { .. })
        ));
    }

    #[test]
    fn hubs_are_isolated_but_shared_is_shared() {
        let a = InProcTransport::new();
        let b = InProcTransport::new();
        let _listener = a.listen("inproc:x").unwrap();
        assert!(b.connect("inproc:x").is_err());

        let s1 = InProcTransport::shared();
        let s2 = InProcTransport::shared();
        let _listener = s1.listen("inproc:shared-endpoint-test").unwrap();
        assert!(s2.connect("inproc:shared-endpoint-test").is_ok());
    }

    #[test]
    fn peer_disconnect_surfaces_closed() {
        let t = InProcTransport::new();
        let listener = t.listen("inproc:closer").unwrap();
        let mut conn = t.connect("inproc:closer").unwrap();
        let server = listener.accept().unwrap();
        drop(server);
        assert_eq!(conn.recv(), Err(TransportError::Closed));
    }
}
