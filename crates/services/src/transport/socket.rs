//! Socket transport: TCP (`tcp:<host>:<port>`) and, on Unix,
//! Unix-domain sockets (`uds:<path>`), built on `std::net` /
//! `std::os::unix::net` only.
//!
//! Frames cross the stream in the `SRNF`-prefixed wire form from
//! [`frame`](super::frame); `TCP_NODELAY` is set on every TCP stream so
//! small β invocation frames are not Nagle-delayed. Binding `tcp:host:0`
//! picks a free port, and [`Listener::local_addr`] reports the actual
//! one, so tests and CI never race on fixed ports. A UDS listener
//! removes a stale socket file on bind and unlinks its path on drop.

use std::net::{TcpListener, TcpStream};

use super::frame::{read_from, write_to, Frame};
use super::{split_scheme, Connection, Listener, Transport, TransportError};

fn io_err(e: std::io::Error) -> TransportError {
    TransportError::Io(e.to_string())
}

/// The socket transport (schemes `tcp:` and, on Unix, `uds:`).
#[derive(Clone, Copy, Default)]
pub struct SocketTransport;

impl SocketTransport {
    /// A socket transport.
    pub fn new() -> Self {
        SocketTransport
    }
}

impl Transport for SocketTransport {
    fn name(&self) -> &'static str {
        "socket"
    }

    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>, TransportError> {
        match split_scheme(addr) {
            Some(("tcp", host_port)) => {
                let inner = TcpListener::bind(host_port).map_err(io_err)?;
                Ok(Box::new(TcpFrameListener { inner }))
            }
            #[cfg(unix)]
            Some(("uds", path)) if !path.is_empty() => {
                // remove a stale socket file left by a crashed process;
                // refuse to touch anything that is not a socket
                let p = std::path::Path::new(path);
                if p.exists() {
                    use std::os::unix::fs::FileTypeExt;
                    let is_socket = std::fs::symlink_metadata(p)
                        .map(|m| m.file_type().is_socket())
                        .unwrap_or(false);
                    if !is_socket {
                        return Err(TransportError::Io(format!(
                            "`{path}` exists and is not a socket"
                        )));
                    }
                    std::fs::remove_file(p).map_err(io_err)?;
                }
                let inner = std::os::unix::net::UnixListener::bind(p).map_err(io_err)?;
                Ok(Box::new(UdsFrameListener {
                    inner,
                    path: path.to_string(),
                }))
            }
            _ => Err(TransportError::AddressUnsupported {
                addr: addr.to_string(),
                transport: "socket",
            }),
        }
    }

    fn connect(&self, addr: &str) -> Result<Box<dyn Connection>, TransportError> {
        match split_scheme(addr) {
            Some(("tcp", host_port)) => {
                let stream = TcpStream::connect(host_port).map_err(io_err)?;
                stream.set_nodelay(true).map_err(io_err)?;
                Ok(Box::new(StreamConnection {
                    stream,
                    peer: addr.to_string(),
                }))
            }
            #[cfg(unix)]
            Some(("uds", path)) if !path.is_empty() => {
                let stream = std::os::unix::net::UnixStream::connect(path).map_err(io_err)?;
                Ok(Box::new(StreamConnection {
                    stream,
                    peer: addr.to_string(),
                }))
            }
            _ => Err(TransportError::AddressUnsupported {
                addr: addr.to_string(),
                transport: "socket",
            }),
        }
    }
}

struct TcpFrameListener {
    inner: TcpListener,
}

impl Listener for TcpFrameListener {
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError> {
        let (stream, peer) = self.inner.accept().map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        Ok(Box::new(StreamConnection {
            stream,
            peer: format!("tcp:{peer}"),
        }))
    }

    fn local_addr(&self) -> String {
        match self.inner.local_addr() {
            Ok(a) => format!("tcp:{a}"),
            Err(_) => "tcp:<unknown>".to_string(),
        }
    }
}

#[cfg(unix)]
struct UdsFrameListener {
    inner: std::os::unix::net::UnixListener,
    path: String,
}

#[cfg(unix)]
impl Listener for UdsFrameListener {
    fn accept(&self) -> Result<Box<dyn Connection>, TransportError> {
        let (stream, _) = self.inner.accept().map_err(io_err)?;
        Ok(Box::new(StreamConnection {
            stream,
            peer: format!("uds:{}", self.path),
        }))
    }

    fn local_addr(&self) -> String {
        format!("uds:{}", self.path)
    }
}

#[cfg(unix)]
impl Drop for UdsFrameListener {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A framed connection over any blocking byte stream.
struct StreamConnection<S> {
    stream: S,
    peer: String,
}

impl<S: std::io::Read + std::io::Write + Send> Connection for StreamConnection<S> {
    fn send(&mut self, frame: &Frame) -> Result<(), TransportError> {
        write_to(&mut self.stream, frame)
    }

    fn recv(&mut self) -> Result<Frame, TransportError> {
        read_from(&mut self.stream)
    }

    fn peer_addr(&self) -> String {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn tcp_loopback_exchanges_frames() {
        let t = SocketTransport::new();
        let listener = t.listen("tcp:127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        assert!(addr.starts_with("tcp:127.0.0.1:"));

        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let frame = conn.recv().unwrap();
            assert_eq!(frame, Frame::Heartbeat { at: 3 });
            conn.send(&Frame::HeartbeatAck { at: 3, services: 0 })
                .unwrap();
        });

        let mut conn = t.connect(&addr).unwrap();
        conn.send(&Frame::Heartbeat { at: 3 }).unwrap();
        assert_eq!(
            conn.recv().unwrap(),
            Frame::HeartbeatAck { at: 3, services: 0 }
        );
        server.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn uds_exchanges_frames_and_cleans_up_its_path() {
        let path =
            std::env::temp_dir().join(format!("serena-uds-test-{}.sock", std::process::id()));
        let addr = format!("uds:{}", path.display());
        let t = SocketTransport::new();
        let listener = t.listen(&addr).unwrap();
        assert_eq!(listener.local_addr(), addr);

        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            assert_eq!(conn.recv().unwrap(), Frame::Bye);
            listener // moved in; dropped at thread end, unlinking the path
        });

        let mut conn = t.connect(&addr).unwrap();
        conn.send(&Frame::Bye).unwrap();
        let listener = server.join().unwrap();
        assert!(path.exists());
        drop(listener);
        assert!(!path.exists());
    }

    #[test]
    fn unsupported_addresses_are_typed_errors() {
        let t = SocketTransport::new();
        assert!(matches!(
            t.connect("inproc:x"),
            Err(TransportError::AddressUnsupported { .. })
        ));
        assert!(matches!(
            t.listen("nonsense"),
            Err(TransportError::AddressUnsupported { .. })
        ));
        // connection refused is Io, not a panic
        assert!(matches!(
            t.connect("tcp:127.0.0.1:1"),
            Err(TransportError::Io(_))
        ));
    }

    #[test]
    fn garbage_bytes_on_the_wire_surface_as_typed_errors() {
        let t = SocketTransport::new();
        let listener = t.listen("tcp:127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let raw_addr = addr.trim_start_matches("tcp:").to_string();

        // hostile client writes an HTTP request at our listener
        let client = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(raw_addr).unwrap();
            s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        });
        let mut conn = listener.accept().unwrap();
        assert_eq!(
            conn.recv(),
            Err(TransportError::BadMagic { found: *b"GET " })
        );
        client.join().unwrap();

        // peer that dies mid-frame surfaces Truncated
        let wire = Frame::Heartbeat { at: 1 }.to_wire();
        let raw_addr = addr.trim_start_matches("tcp:").to_string();
        let client = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(raw_addr).unwrap();
            s.write_all(&wire[..wire.len() - 3]).unwrap();
        });
        let mut conn = listener.accept().unwrap();
        assert!(matches!(conn.recv(), Err(TransportError::Truncated { .. })));
        client.join().unwrap();
    }
}
