//! The simulated discovery network (Figure 1's distributed layout).
//!
//! In the paper's prototype, services register to *Local Environment
//! Resource Managers* (LERMs) distributed in the network; the core
//! Environment Resource Manager discovers them over OSGi/UPnP and makes
//! them "transparently available". This module reproduces that behaviour
//! in-process and deterministically:
//!
//! * a [`DiscoveryBus`] carries announce/leave messages with configurable
//!   latency and deterministic jitter (seeded xorshift — no wall clock, no
//!   global RNG, so every experiment replays identically);
//! * a [`LocalErm`] is a named registration point for services;
//! * the [`CoreErm`] drains due messages each logical tick and applies them
//!   to its [`DynamicRegistry`], from which queries resolve invocations.
//!
//! The latency model is what makes discovery *churn* observable: a sensor
//! announced at instant τ only becomes queryable at τ + latency(+jitter),
//! exactly the lag the discovery benchmarks (E11) measure.

use std::collections::VecDeque;
use std::sync::Arc;

use serena_core::sync::Mutex;

use serena_core::service::Service;
use serena_core::time::Instant;
use serena_core::value::ServiceRef;

use crate::registry::DynamicRegistry;

/// Latency/jitter configuration for the simulated network.
#[derive(Debug, Clone, Copy)]
pub struct BusConfig {
    /// Ticks between a service announcement and its visibility at the core
    /// ERM.
    pub announce_latency: u64,
    /// Ticks between a service leaving and its removal at the core ERM.
    pub leave_latency: u64,
    /// Maximum extra ticks of deterministic jitter added per message.
    pub jitter: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig {
            announce_latency: 1,
            leave_latency: 1,
            jitter: 0,
            seed: 0x5EED,
        }
    }
}

impl BusConfig {
    /// Zero-latency bus: announcements apply at the next tick boundary.
    pub fn instant() -> Self {
        BusConfig {
            announce_latency: 0,
            leave_latency: 0,
            jitter: 0,
            seed: 0,
        }
    }
}

enum Payload {
    Announce {
        reference: ServiceRef,
        service: Arc<dyn Service>,
        origin: String,
    },
    Leave {
        reference: ServiceRef,
    },
}

struct Scheduled {
    deliver_at: Instant,
    seq: u64,
    payload: Payload,
}

/// The shared in-process message bus.
pub struct DiscoveryBus {
    config: BusConfig,
    state: Mutex<BusState>,
}

struct BusState {
    queue: VecDeque<Scheduled>,
    seq: u64,
    rng: u64,
}

impl DiscoveryBus {
    /// Create a bus with the given latency model.
    pub fn new(config: BusConfig) -> Arc<Self> {
        Arc::new(DiscoveryBus {
            config,
            state: Mutex::new(BusState {
                queue: VecDeque::new(),
                seq: 0,
                rng: config.seed.max(1),
            }),
        })
    }

    fn jitter(state: &mut BusState, max: u64) -> u64 {
        if max == 0 {
            return 0;
        }
        // xorshift64 — deterministic, no external RNG needed here.
        let mut x = state.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        state.rng = x;
        x % (max + 1)
    }

    fn push(&self, now: Instant, base_latency: u64, payload: Payload) {
        let mut state = self.state.lock();
        let jitter = Self::jitter(&mut state, self.config.jitter);
        let seq = state.seq;
        state.seq += 1;
        state.queue.push_back(Scheduled {
            deliver_at: now + base_latency + jitter,
            seq,
            payload,
        });
    }

    /// Number of undelivered messages.
    pub fn pending(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Remove and return all messages due at or before `now`, in
    /// (deliver_at, enqueue order).
    fn drain_due(&self, now: Instant) -> Vec<Scheduled> {
        let mut state = self.state.lock();
        let mut due: Vec<Scheduled> = Vec::new();
        let mut keep = VecDeque::with_capacity(state.queue.len());
        while let Some(msg) = state.queue.pop_front() {
            if msg.deliver_at <= now {
                due.push(msg);
            } else {
                keep.push_back(msg);
            }
        }
        state.queue = keep;
        due.sort_by_key(|m| (m.deliver_at, m.seq));
        due
    }
}

/// A Local Environment Resource Manager: the registration point services
/// use in their corner of the network (Figure 1).
pub struct LocalErm {
    id: String,
    bus: Arc<DiscoveryBus>,
}

impl LocalErm {
    /// Create a LERM named `id` attached to `bus`.
    pub fn new(id: impl Into<String>, bus: Arc<DiscoveryBus>) -> Self {
        LocalErm { id: id.into(), bus }
    }

    /// The LERM's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// A service registers here at instant `now`; it becomes visible at the
    /// core ERM after the bus latency.
    pub fn register_service(
        &self,
        reference: impl Into<ServiceRef>,
        service: Arc<dyn Service>,
        now: Instant,
    ) {
        self.bus.push(
            now,
            self.bus.config.announce_latency,
            Payload::Announce {
                reference: reference.into(),
                service,
                origin: self.id.clone(),
            },
        );
    }

    /// A service deregisters (or dies) at instant `now`.
    pub fn unregister_service(&self, reference: impl Into<ServiceRef>, now: Instant) {
        self.bus.push(
            now,
            self.bus.config.leave_latency,
            Payload::Leave {
                reference: reference.into(),
            },
        );
    }
}

/// The core Environment Resource Manager: discovers LERM-announced services
/// and maintains the registry used by query evaluation.
pub struct CoreErm {
    bus: Arc<DiscoveryBus>,
    registry: Arc<DynamicRegistry>,
}

impl CoreErm {
    /// Attach a core ERM to `bus` with a fresh registry.
    pub fn new(bus: Arc<DiscoveryBus>) -> Self {
        CoreErm {
            bus,
            registry: Arc::new(DynamicRegistry::new()),
        }
    }

    /// Attach to `bus` reusing an existing registry.
    pub fn with_registry(bus: Arc<DiscoveryBus>, registry: Arc<DynamicRegistry>) -> Self {
        CoreErm { bus, registry }
    }

    /// The registry queries invoke through.
    pub fn registry(&self) -> &Arc<DynamicRegistry> {
        &self.registry
    }

    /// Apply all discovery messages due at or before `now`. Returns the
    /// number of messages applied. Call once per logical tick.
    pub fn tick(&self, now: Instant) -> usize {
        let due = self.bus.drain_due(now);
        let n = due.len();
        for msg in due {
            match msg.payload {
                Payload::Announce {
                    reference,
                    service,
                    origin,
                } => {
                    self.registry.register_from(reference, service, origin);
                }
                Payload::Leave { reference } => {
                    self.registry.unregister(&reference);
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::service::fixtures;
    use serena_core::value::ServiceRef;

    #[test]
    fn announcement_respects_latency() {
        let bus = DiscoveryBus::new(BusConfig {
            announce_latency: 3,
            leave_latency: 1,
            jitter: 0,
            seed: 1,
        });
        let lerm = LocalErm::new("lerm-A", Arc::clone(&bus));
        let core = CoreErm::new(Arc::clone(&bus));

        lerm.register_service("sensor01", fixtures::temperature_sensor(1), Instant(0));
        assert_eq!(core.tick(Instant(0)), 0);
        assert_eq!(core.tick(Instant(2)), 0);
        assert!(!core.registry().contains(&ServiceRef::new("sensor01")));
        assert_eq!(core.tick(Instant(3)), 1);
        assert!(core.registry().contains(&ServiceRef::new("sensor01")));
        assert_eq!(
            core.registry()
                .origin_of(&ServiceRef::new("sensor01"))
                .unwrap(),
            "lerm-A"
        );
    }

    #[test]
    fn leave_removes_after_latency() {
        let bus = DiscoveryBus::new(BusConfig::instant());
        let lerm = LocalErm::new("lerm-A", Arc::clone(&bus));
        let core = CoreErm::new(Arc::clone(&bus));
        lerm.register_service("s", fixtures::temperature_sensor(1), Instant(0));
        core.tick(Instant(0));
        assert_eq!(core.registry().len(), 1);
        lerm.unregister_service("s", Instant(1));
        core.tick(Instant(1));
        assert_eq!(core.registry().len(), 0);
    }

    #[test]
    fn jitter_is_deterministic() {
        let run = || {
            let bus = DiscoveryBus::new(BusConfig {
                announce_latency: 1,
                leave_latency: 1,
                jitter: 5,
                seed: 42,
            });
            let lerm = LocalErm::new("L", Arc::clone(&bus));
            let core = CoreErm::new(Arc::clone(&bus));
            for i in 0..10u64 {
                lerm.register_service(format!("s{i}"), fixtures::temperature_sensor(i), Instant(0));
            }
            (0..10)
                .map(|t| core.tick(Instant(t)))
                .collect::<Vec<usize>>()
        };
        assert_eq!(run(), run());
        // all ten eventually arrive
        assert_eq!(run().iter().sum::<usize>(), 10);
    }

    #[test]
    fn multiple_lerms_share_one_core() {
        let bus = DiscoveryBus::new(BusConfig::instant());
        let lerm_a = LocalErm::new("A", Arc::clone(&bus));
        let lerm_b = LocalErm::new("B", Arc::clone(&bus));
        let core = CoreErm::new(Arc::clone(&bus));
        lerm_a.register_service("sensor01", fixtures::temperature_sensor(1), Instant(0));
        lerm_b.register_service("camera01", fixtures::camera(1), Instant(0));
        core.tick(Instant(0));
        assert_eq!(core.registry().len(), 2);
        assert_eq!(
            core.registry()
                .origin_of(&ServiceRef::new("camera01"))
                .unwrap(),
            "B"
        );
        assert_eq!(bus.pending(), 0);
    }

    #[test]
    fn ordering_within_tick_is_fifo_per_deliver_time() {
        let bus = DiscoveryBus::new(BusConfig::instant());
        let lerm = LocalErm::new("L", Arc::clone(&bus));
        let core = CoreErm::new(Arc::clone(&bus));
        // register then immediately unregister: both due at the same tick —
        // FIFO order must leave the service absent.
        lerm.register_service("s", fixtures::temperature_sensor(1), Instant(0));
        lerm.unregister_service("s", Instant(0));
        core.tick(Instant(0));
        assert!(!core.registry().contains(&ServiceRef::new("s")));
    }
}
