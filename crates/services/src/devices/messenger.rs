//! Simulated messengers (stand-ins for the paper's mail server, Openfire
//! jabber server and Clickatell SMS gateway).
//!
//! `sendMessage(address, text) : (sent)` is the paper's canonical *active*
//! prototype: its effect "can not be canceled". The simulation makes that
//! effect observable: every delivery is appended to a shared, inspectable
//! outbox — the reproduction's equivalent of checking the phone and the
//! mail client in §5.2.

use std::sync::Arc;

use serena_core::sync::Mutex;

use serena_core::prototype::{examples as protos, Prototype};
use serena_core::service::Service;
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::Value;

/// Transport flavour — affects only labelling and address validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessengerKind {
    /// SMTP-style: addresses must contain `@`.
    Email,
    /// XMPP-style: addresses must contain `@`.
    Jabber,
    /// SMS gateway: addresses must be numeric (`+` prefix allowed).
    Sms,
}

impl MessengerKind {
    fn accepts(&self, address: &str) -> bool {
        match self {
            MessengerKind::Email | MessengerKind::Jabber => address.contains('@'),
            MessengerKind::Sms => {
                let digits = address.strip_prefix('+').unwrap_or(address);
                !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit())
            }
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            MessengerKind::Email => "email",
            MessengerKind::Jabber => "jabber",
            MessengerKind::Sms => "sms",
        }
    }
}

/// One delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentMessage {
    /// Logical instant of delivery.
    pub at: Instant,
    /// Transport used.
    pub via: MessengerKind,
    /// Destination address.
    pub address: String,
    /// Message body.
    pub text: String,
    /// Attached photo size in bytes (0 = no attachment). §5.2 extends
    /// `contacts` "with an additional attribute allowing to send a picture
    /// with a message" — this is the delivery-side record of it.
    pub attachment_bytes: usize,
}

/// The photo-capable prototype of §5.2's full scenario:
/// `sendPhotoMessage(address, text, photo) : (sent)` — active.
pub fn send_photo_message_prototype() -> Arc<Prototype> {
    Prototype::declare(
        "sendPhotoMessage",
        &[
            ("address", serena_core::value::DataType::Str),
            ("text", serena_core::value::DataType::Str),
            ("photo", serena_core::value::DataType::Blob),
        ],
        &[("sent", serena_core::value::DataType::Bool)],
        true,
    )
    .expect("valid prototype")
}

/// A simulated messenger service with an inspectable outbox.
pub struct SimMessenger {
    kind: MessengerKind,
    outbox: Arc<Mutex<Vec<SentMessage>>>,
}

impl SimMessenger {
    /// New messenger of the given kind with a fresh outbox.
    pub fn new(kind: MessengerKind) -> Self {
        SimMessenger {
            kind,
            outbox: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Handle to the outbox (clone to keep after moving the service into a
    /// registry).
    pub fn outbox(&self) -> Arc<Mutex<Vec<SentMessage>>> {
        Arc::clone(&self.outbox)
    }

    /// Snapshot of delivered messages.
    pub fn sent(&self) -> Vec<SentMessage> {
        self.outbox.lock().clone()
    }

    /// Wrap into a shareable [`Service`], returning the outbox handle too.
    pub fn into_service(self) -> (Arc<dyn Service>, Arc<Mutex<Vec<SentMessage>>>) {
        let outbox = Arc::clone(&self.outbox);
        (Arc::new(self), outbox)
    }
}

impl Service for SimMessenger {
    fn prototypes(&self) -> Vec<Arc<Prototype>> {
        vec![protos::send_message(), send_photo_message_prototype()]
    }

    fn invoke(
        &self,
        prototype: &Prototype,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, String> {
        let with_photo = match prototype.name() {
            "sendMessage" => false,
            "sendPhotoMessage" => true,
            other => {
                return Err(format!(
                    "{} messenger cannot serve {other}",
                    self.kind.label()
                ))
            }
        };
        let address = input
            .get(0)
            .and_then(|v| v.as_str())
            .ok_or("expects address STRING as first parameter")?;
        let text = input
            .get(1)
            .and_then(|v| v.as_str())
            .ok_or("expects text STRING as second parameter")?;
        let attachment_bytes = if with_photo {
            input
                .get(2)
                .and_then(|v| v.as_blob())
                .ok_or("sendPhotoMessage expects photo BLOB as third parameter")?
                .len()
        } else {
            0
        };
        let deliverable = self.kind.accepts(address);
        if deliverable {
            self.outbox.lock().push(SentMessage {
                at,
                via: self.kind,
                address: address.to_string(),
                text: text.to_string(),
                attachment_bytes,
            });
        }
        // `sent` reports the delivery outcome; an unroutable address is a
        // result, not an invocation error.
        Ok(vec![Tuple::new(vec![Value::Bool(deliverable)])])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::tuple;

    #[test]
    fn email_delivery_recorded() {
        let m = SimMessenger::new(MessengerKind::Email);
        let outbox = m.outbox();
        let (svc, _) = m.into_service();
        let out = svc
            .invoke(
                &protos::send_message(),
                &tuple!["nicolas@elysee.fr", "Bonjour!"],
                Instant(3),
            )
            .unwrap();
        assert_eq!(out[0][0], Value::Bool(true));
        let sent = outbox.lock();
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].address, "nicolas@elysee.fr");
        assert_eq!(sent[0].text, "Bonjour!");
        assert_eq!(sent[0].at, Instant(3));
    }

    #[test]
    fn invalid_address_reports_sent_false() {
        let (svc, outbox) = SimMessenger::new(MessengerKind::Email).into_service();
        let out = svc
            .invoke(
                &protos::send_message(),
                &tuple!["not-an-address", "hi"],
                Instant(0),
            )
            .unwrap();
        assert_eq!(out[0][0], Value::Bool(false));
        assert!(outbox.lock().is_empty());
    }

    #[test]
    fn sms_requires_numeric_addresses() {
        let kind = MessengerKind::Sms;
        assert!(kind.accepts("+33612345678"));
        assert!(kind.accepts("0612345678"));
        assert!(!kind.accepts("carla@elysee.fr"));
        assert!(!kind.accepts("+"));
    }

    #[test]
    fn wrong_prototype_rejected() {
        let (svc, _) = SimMessenger::new(MessengerKind::Jabber).into_service();
        assert!(svc
            .invoke(&protos::get_temperature(), &Tuple::empty(), Instant(0))
            .is_err());
    }

    #[test]
    fn photo_message_records_attachment() {
        let (svc, outbox) = SimMessenger::new(MessengerKind::Email).into_service();
        let photo = Value::blob(vec![0u8; 128]);
        let out = svc
            .invoke(
                &send_photo_message_prototype(),
                &Tuple::new(vec![
                    Value::str("carla@elysee.fr"),
                    Value::str("alert"),
                    photo,
                ]),
                Instant(2),
            )
            .unwrap();
        assert_eq!(out[0][0], Value::Bool(true));
        let sent = outbox.lock();
        assert_eq!(sent[0].attachment_bytes, 128);
        // missing photo is an invocation error
        assert!(svc
            .invoke(
                &send_photo_message_prototype(),
                &tuple!["carla@elysee.fr", "alert"],
                Instant(2),
            )
            .is_err());
    }

    #[test]
    fn outbox_accumulates_in_order() {
        let (svc, outbox) = SimMessenger::new(MessengerKind::Jabber).into_service();
        for (i, who) in ["a@x", "b@x", "c@x"].iter().enumerate() {
            svc.invoke(
                &protos::send_message(),
                &tuple![*who, "msg"],
                Instant(i as u64),
            )
            .unwrap();
        }
        let addrs: Vec<String> = outbox.lock().iter().map(|m| m.address.clone()).collect();
        assert_eq!(addrs, vec!["a@x", "b@x", "c@x"]);
    }
}
