//! Simulated temperature sensors (stand-in for the paper's Thermochron
//! iButton DS1921 devices).
//!
//! A sensor's reading is a deterministic function of its configuration and
//! the logical instant: a base temperature, a small seeded fluctuation, and
//! optional scripted *heat events* — the reproduction of the authors
//! "heating sensors over the threshold" with a hair dryer, needed to
//! trigger the surveillance scenario's alerts on cue.

use std::sync::Arc;

use serena_core::prototype::{examples as protos, Prototype};
use serena_core::service::Service;
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::Value;

use super::mix;

/// A scripted heating episode: between `from` and `to` (inclusive) the
/// sensor reads `peak` degrees (ramping is deliberately instantaneous —
/// threshold crossings should be exact for the experiment harness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatEvent {
    /// First instant of the episode.
    pub from: Instant,
    /// Last instant of the episode.
    pub to: Instant,
    /// Temperature during the episode (°C).
    pub peak: f64,
}

/// A deterministic simulated temperature sensor implementing
/// `getTemperature() : (temperature REAL)`.
#[derive(Debug, Clone)]
pub struct SimTemperatureSensor {
    seed: u64,
    base: f64,
    fluctuation: f64,
    events: Vec<HeatEvent>,
}

impl SimTemperatureSensor {
    /// A sensor reading around `base` °C with ±`fluctuation` seeded noise.
    pub fn new(seed: u64, base: f64, fluctuation: f64) -> Self {
        SimTemperatureSensor {
            seed,
            base,
            fluctuation,
            events: Vec::new(),
        }
    }

    /// Standard room sensor: 19–23 °C.
    pub fn room(seed: u64) -> Self {
        SimTemperatureSensor::new(seed, 21.0, 2.0)
    }

    /// Add a scripted heat event (builder style).
    pub fn with_heat_event(mut self, from: Instant, to: Instant, peak: f64) -> Self {
        self.events.push(HeatEvent { from, to, peak });
        self
    }

    /// The reading at `at` — pure, replayable.
    pub fn reading_at(&self, at: Instant) -> f64 {
        for ev in &self.events {
            if ev.from <= at && at <= ev.to {
                return ev.peak;
            }
        }
        // fluctuation in [-fluctuation, +fluctuation], quantized to 0.1 °C
        let h = mix(self.seed, at.ticks(), 0xFEE1) % 2001;
        let unit = (h as f64 / 1000.0) - 1.0;
        let raw = self.base + unit * self.fluctuation;
        (raw * 10.0).round() / 10.0
    }

    /// Wrap into a shareable [`Service`].
    pub fn into_service(self) -> Arc<dyn Service> {
        Arc::new(self)
    }
}

impl Service for SimTemperatureSensor {
    fn prototypes(&self) -> Vec<Arc<Prototype>> {
        vec![protos::get_temperature()]
    }

    fn invoke(
        &self,
        prototype: &Prototype,
        _input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, String> {
        if prototype.name() != "getTemperature" {
            return Err(format!(
                "temperature sensor cannot serve {}",
                prototype.name()
            ));
        }
        Ok(vec![Tuple::new(vec![Value::Real(self.reading_at(at))])])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_are_deterministic_per_instant() {
        let s = SimTemperatureSensor::room(6);
        assert_eq!(s.reading_at(Instant(5)), s.reading_at(Instant(5)));
        // vary over time (with overwhelming likelihood for this seed)
        let varies = (0..20).any(|t| s.reading_at(Instant(t)) != s.reading_at(Instant(t + 1)));
        assert!(varies);
    }

    #[test]
    fn readings_stay_in_band() {
        let s = SimTemperatureSensor::new(3, 21.0, 2.0);
        for t in 0..200 {
            let r = s.reading_at(Instant(t));
            assert!((19.0..=23.0).contains(&r), "reading {r} out of band at {t}");
        }
    }

    #[test]
    fn heat_event_overrides_band() {
        let s = SimTemperatureSensor::room(1).with_heat_event(Instant(10), Instant(12), 40.0);
        assert!(s.reading_at(Instant(9)) < 30.0);
        assert_eq!(s.reading_at(Instant(10)), 40.0);
        assert_eq!(s.reading_at(Instant(12)), 40.0);
        assert!(s.reading_at(Instant(13)) < 30.0);
    }

    #[test]
    fn service_interface() {
        let svc = SimTemperatureSensor::room(6).into_service();
        let out = svc
            .invoke(&protos::get_temperature(), &Tuple::empty(), Instant(4))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0][0].as_real().is_some());
        assert!(svc
            .invoke(&protos::send_message(), &Tuple::empty(), Instant(0))
            .is_err());
    }
}
