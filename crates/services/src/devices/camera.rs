//! Simulated network cameras (stand-in for the paper's Logitech webcams).
//!
//! A camera implements the two passive prototypes of Table 1:
//! `checkPhoto(area) : (quality, delay)` and
//! `takePhoto(area, quality) : (photo)`. Quality depends on whether the
//! camera covers the requested area (a camera asked about a foreign area
//! answers with quality 0 — it *can* answer, it just sees nothing useful),
//! plus a per-instant seeded wobble; photos are synthetic BLOBs embedding
//! their provenance so scenario harnesses can verify end-to-end plumbing.

use std::sync::Arc;

use serena_core::prototype::{examples as protos, Prototype};
use serena_core::service::Service;
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::Value;

use super::mix;

/// A deterministic simulated camera.
#[derive(Debug, Clone)]
pub struct SimCamera {
    id: String,
    seed: u64,
    /// Areas this camera covers.
    areas: Vec<String>,
    /// Best quality the camera can deliver (0–10).
    max_quality: i64,
    /// Bytes per photo payload.
    photo_size: usize,
}

impl SimCamera {
    /// A camera named `id` covering `areas`.
    pub fn new(id: impl Into<String>, seed: u64, areas: &[&str]) -> Self {
        SimCamera {
            id: id.into(),
            seed,
            areas: areas.iter().map(|s| s.to_string()).collect(),
            max_quality: 9,
            photo_size: 256,
        }
    }

    /// Cap the deliverable quality (builder style).
    pub fn with_max_quality(mut self, q: i64) -> Self {
        self.max_quality = q;
        self
    }

    /// Set the synthetic photo payload size (builder style).
    pub fn with_photo_size(mut self, bytes: usize) -> Self {
        self.photo_size = bytes;
        self
    }

    /// Quality the camera reports for `area` at `at`: 0 when the area is
    /// not covered, otherwise `max_quality` minus a small seeded wobble.
    pub fn quality_at(&self, area: &str, at: Instant) -> i64 {
        if !self.areas.iter().any(|a| a == area) {
            return 0;
        }
        let wobble = (mix(self.seed, at.ticks(), area.len() as u64) % 3) as i64;
        (self.max_quality - wobble).max(1)
    }

    /// Expected capture delay in seconds (depends only on the camera).
    pub fn delay(&self) -> f64 {
        0.05 * ((self.seed % 10) as f64 + 1.0)
    }

    /// Wrap into a shareable [`Service`].
    pub fn into_service(self) -> Arc<dyn Service> {
        Arc::new(self)
    }
}

impl Service for SimCamera {
    fn prototypes(&self) -> Vec<Arc<Prototype>> {
        vec![protos::check_photo(), protos::take_photo()]
    }

    fn invoke(
        &self,
        prototype: &Prototype,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, String> {
        match prototype.name() {
            "checkPhoto" => {
                let area = input
                    .get(0)
                    .and_then(|v| v.as_str())
                    .ok_or("checkPhoto expects (area STRING)")?;
                Ok(vec![Tuple::new(vec![
                    Value::Int(self.quality_at(area, at)),
                    Value::Real(self.delay()),
                ])])
            }
            "takePhoto" => {
                let area = input
                    .get(0)
                    .and_then(|v| v.as_str())
                    .ok_or("takePhoto expects (area STRING, quality INTEGER)")?;
                let quality = input
                    .get(1)
                    .and_then(|v| v.as_int())
                    .ok_or("takePhoto expects (area STRING, quality INTEGER)")?;
                let header = format!(
                    "IMG|cam={}|area={}|q={}|t={}|",
                    self.id,
                    area,
                    quality,
                    at.ticks()
                );
                let mut payload = header.into_bytes();
                let mut i = 0u64;
                while payload.len() < self.photo_size {
                    payload.push((mix(self.seed, at.ticks(), i) & 0xFF) as u8);
                    i += 1;
                }
                Ok(vec![Tuple::new(vec![Value::blob(payload)])])
            }
            other => Err(format!("camera {} cannot serve {other}", self.id)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::tuple;

    fn cam() -> SimCamera {
        SimCamera::new("camera01", 1, &["office", "corridor"])
    }

    #[test]
    fn quality_zero_outside_coverage() {
        let c = cam();
        assert_eq!(c.quality_at("roof", Instant(0)), 0);
        assert!(c.quality_at("office", Instant(0)) >= 1);
    }

    #[test]
    fn check_then_take_photo_round_trip() {
        let c = cam().into_service();
        let checked = c
            .invoke(&protos::check_photo(), &tuple!["office"], Instant(2))
            .unwrap();
        let quality = checked[0][0].as_int().unwrap();
        assert!(quality > 0);
        let photo = c
            .invoke(
                &protos::take_photo(),
                &tuple!["office", quality],
                Instant(2),
            )
            .unwrap();
        let blob = photo[0][0].as_blob().unwrap();
        assert_eq!(blob.len(), 256);
        let text = String::from_utf8_lossy(blob);
        assert!(text.starts_with("IMG|cam=camera01|area=office|"));
    }

    #[test]
    fn determinism_at_an_instant() {
        let c = cam().into_service();
        let a = c
            .invoke(&protos::take_photo(), &tuple!["office", 5], Instant(7))
            .unwrap();
        let b = c
            .invoke(&protos::take_photo(), &tuple!["office", 5], Instant(7))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_inputs_rejected() {
        let c = cam().into_service();
        assert!(c
            .invoke(&protos::check_photo(), &tuple![42], Instant(0))
            .is_err());
        assert!(c
            .invoke(&protos::get_temperature(), &Tuple::empty(), Instant(0))
            .is_err());
    }

    #[test]
    fn builders_apply() {
        let c = SimCamera::new("c", 3, &["lab"])
            .with_max_quality(4)
            .with_photo_size(16);
        assert!(c.quality_at("lab", Instant(0)) <= 4);
        let svc = c.into_service();
        let photo = svc
            .invoke(&protos::take_photo(), &tuple!["lab", 4], Instant(0))
            .unwrap();
        // header longer than 16 bytes is kept whole
        assert!(photo[0][0].as_blob().unwrap().len() >= 16);
    }
}
