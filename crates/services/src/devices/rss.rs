//! Simulated RSS feeds (stand-ins for the paper's "Le Monde", "Le Figaro"
//! and "CNN Europe" feeds, §5.2 scenario 2).
//!
//! "A wrapper service transforms RSS feeds into real streams so that a
//! tuple is inserted in the stream when a new item appears." The simulation
//! generates a deterministic item schedule from a seeded headline grammar:
//! at some instants a feed publishes 0 items, at others 1–2, and a
//! configurable fraction of headlines contains a tracked keyword (the
//! paper's example keyword is "Obama"). The PEMS stream adapter polls
//! [`SimRssFeed::items_at`] each tick; [`SimRssFeed::into_service`]
//! additionally exposes the feed as a pull-based `fetchNews` service.

use std::sync::Arc;

use serena_core::prototype::Prototype;
use serena_core::service::Service;
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::{DataType, Value};

use super::mix;

/// One published feed item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RssItem {
    /// Feed name (e.g. `lemonde`).
    pub source: String,
    /// Headline text.
    pub title: String,
    /// Publication instant.
    pub published: Instant,
}

/// The pull prototype exposed by the wrapper service:
/// `fetchNews() : (source STRING, title STRING)` — passive.
pub fn fetch_news_prototype() -> Arc<Prototype> {
    Prototype::declare(
        "fetchNews",
        &[],
        &[("source", DataType::Str), ("title", DataType::Str)],
        false,
    )
    .expect("valid prototype")
}

const SUBJECTS: &[&str] = &[
    "Obama",
    "the Senate",
    "the EU",
    "Lyon",
    "the markets",
    "researchers",
    "the ministry",
    "voters",
    "NASA",
    "the summit",
];
const VERBS: &[&str] = &[
    "announces",
    "debates",
    "rejects",
    "celebrates",
    "postpones",
    "reviews",
    "approves",
    "questions",
];
const OBJECTS: &[&str] = &[
    "a new treaty",
    "the budget",
    "climate measures",
    "the election results",
    "a space mission",
    "energy prices",
    "the reform",
    "a trade accord",
];

/// A deterministic simulated RSS feed.
#[derive(Debug, Clone)]
pub struct SimRssFeed {
    name: String,
    seed: u64,
    /// Probability (percent) that an instant publishes at least one item.
    publish_pct: u64,
    /// Probability (percent) that a published headline leads with the
    /// tracked keyword slot (`SUBJECTS[0]`, "Obama").
    keyword_pct: u64,
}

impl SimRssFeed {
    /// A feed named `name`, publishing on roughly `publish_pct`% of
    /// instants, with `keyword_pct`% of headlines about `SUBJECTS[0]`.
    pub fn new(name: impl Into<String>, seed: u64, publish_pct: u64, keyword_pct: u64) -> Self {
        SimRssFeed {
            name: name.into(),
            seed,
            publish_pct: publish_pct.min(100),
            keyword_pct: keyword_pct.min(100),
        }
    }

    /// Feed name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tracked keyword the generator occasionally leads headlines with.
    pub fn tracked_keyword() -> &'static str {
        SUBJECTS[0]
    }

    fn headline(&self, at: Instant, slot: u64) -> String {
        let pick = |bank: &'static [&'static str], salt: u64| -> &'static str {
            bank[(mix(self.seed, at.ticks(), salt.wrapping_add(slot * 97)) % bank.len() as u64)
                as usize]
        };
        let subject = if mix(self.seed, at.ticks(), 7 + slot) % 100 < self.keyword_pct {
            SUBJECTS[0]
        } else {
            pick(SUBJECTS, 11)
        };
        format!("{subject} {} {}", pick(VERBS, 13), pick(OBJECTS, 17))
    }

    /// The items published at exactly instant `at` (0, 1 or 2).
    pub fn items_at(&self, at: Instant) -> Vec<RssItem> {
        let roll = mix(self.seed, at.ticks(), 3) % 100;
        if roll >= self.publish_pct {
            return Vec::new();
        }
        let count = 1 + (mix(self.seed, at.ticks(), 5) % 2);
        (0..count)
            .map(|slot| RssItem {
                source: self.name.clone(),
                title: self.headline(at, slot),
                published: at,
            })
            .collect()
    }

    /// All items published in the inclusive instant range.
    pub fn items_between(&self, from: Instant, to: Instant) -> Vec<RssItem> {
        (from.ticks()..=to.ticks())
            .flat_map(|t| self.items_at(Instant(t)))
            .collect()
    }

    /// Wrap into a pull-based [`Service`] serving `fetchNews` (returns the
    /// items of the *current* instant).
    pub fn into_service(self) -> Arc<dyn Service> {
        Arc::new(self)
    }
}

impl Service for SimRssFeed {
    fn prototypes(&self) -> Vec<Arc<Prototype>> {
        vec![fetch_news_prototype()]
    }

    fn invoke(
        &self,
        prototype: &Prototype,
        _input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, String> {
        if prototype.name() != "fetchNews" {
            return Err(format!(
                "RSS feed {} cannot serve {}",
                self.name,
                prototype.name()
            ));
        }
        Ok(self
            .items_at(at)
            .into_iter()
            .map(|item| Tuple::new(vec![Value::str(&item.source), Value::str(&item.title)]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed() -> SimRssFeed {
        SimRssFeed::new("lemonde", 17, 60, 30)
    }

    #[test]
    fn schedule_is_deterministic() {
        assert_eq!(feed().items_at(Instant(9)), feed().items_at(Instant(9)));
    }

    #[test]
    fn publishes_intermittently() {
        let f = feed();
        let counts: Vec<usize> = (0..50).map(|t| f.items_at(Instant(t)).len()).collect();
        assert!(counts.contains(&0), "some quiet instants expected");
        assert!(counts.iter().any(|&c| c > 0), "some busy instants expected");
        assert!(counts.iter().all(|&c| c <= 2));
    }

    #[test]
    fn keyword_appears_with_configured_frequency() {
        let f = SimRssFeed::new("cnn", 23, 100, 50);
        let items = f.items_between(Instant(0), Instant(99));
        let with_kw = items
            .iter()
            .filter(|i| i.title.contains(SimRssFeed::tracked_keyword()))
            .count();
        // 50% of headlines lead with the keyword; SUBJECTS picks add a few
        // more. Loose band: 25–90%.
        let pct = with_kw * 100 / items.len();
        assert!((25..=90).contains(&pct), "keyword rate {pct}% out of band");
    }

    #[test]
    fn zero_publish_pct_is_silent() {
        let f = SimRssFeed::new("dead", 1, 0, 50);
        assert!(f.items_between(Instant(0), Instant(30)).is_empty());
    }

    #[test]
    fn service_wrapper_emits_current_items() {
        let f = feed();
        // find a busy instant
        let busy = (0..50)
            .map(Instant)
            .find(|t| !f.items_at(*t).is_empty())
            .expect("a busy instant exists");
        let svc = f.clone().into_service();
        let out = svc
            .invoke(&fetch_news_prototype(), &Tuple::empty(), busy)
            .unwrap();
        assert_eq!(out.len(), f.items_at(busy).len());
        assert_eq!(out[0][0], Value::str("lemonde"));
    }

    #[test]
    fn items_between_concatenates() {
        let f = feed();
        let all = f.items_between(Instant(0), Instant(9));
        let sum: usize = (0..10).map(|t| f.items_at(Instant(t)).len()).sum();
        assert_eq!(all.len(), sum);
    }
}
