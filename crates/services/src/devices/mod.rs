//! Simulated pervasive devices (§5.2 substitutions).
//!
//! Every device is a **pure function of (configuration, logical instant,
//! input)** — the determinism-at-an-instant assumption of §3.2 made
//! literal. Side-effecting devices (messengers) additionally record their
//! effects in inspectable logs so tests and the scenario harnesses can
//! observe what the paper's authors observed on their phones and mail
//! clients.

pub mod camera;
pub mod messenger;
pub mod rss;
pub mod temperature;

pub use camera::SimCamera;
pub use messenger::{MessengerKind, SentMessage, SimMessenger};
pub use rss::{RssItem, SimRssFeed};
pub use temperature::{HeatEvent, SimTemperatureSensor};

/// Deterministic 64-bit mix (splitmix64 finalizer) used by all devices to
/// derive per-instant pseudo-random behaviour from (seed, instant, salt)
/// without any RNG state.
pub(crate) fn mix(seed: u64, t: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(t.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(salt.wrapping_mul(0x94D049BB133111EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spread() {
        assert_eq!(mix(1, 2, 3), mix(1, 2, 3));
        assert_ne!(mix(1, 2, 3), mix(1, 2, 4));
        assert_ne!(mix(1, 2, 3), mix(1, 3, 3));
        assert_ne!(mix(1, 2, 3), mix(2, 2, 3));
    }
}
