//! # serena-services
//!
//! The service substrate of the PEMS prototype (§5.1–5.2 of the paper):
//! dynamic service registration, discovery and remote invocation, plus
//! simulated stand-ins for every physical device the authors used.
//!
//! The paper's experimental environment was built from OSGi/UPnP networking,
//! Thermochron iButton sensors, Logitech webcams, an Openfire IM server, a
//! Clickatell SMS gateway, a mail server and live RSS feeds. None of that
//! hardware is available to a reproduction, so this crate implements
//! deterministic simulations that exercise the *same code paths* (see
//! DESIGN.md §2 for the substitution table):
//!
//! * [`registry`] — a dynamic, thread-safe service registry implementing
//!   the core [`serena_core::service::Invoker`] trait, with
//!   registration/unregistration events;
//! * [`bus`] — an in-process discovery bus: *Local Environment Resource
//!   Managers* announce their services with configurable latency and churn;
//!   the core ERM applies due announcements each logical tick (Figure 1's
//!   distributed module layout, minus the real network);
//! * [`devices`] — simulated temperature sensors (with scriptable heat
//!   events), cameras, messengers (e-mail / jabber / SMS with an
//!   inspectable outbox) and RSS feed wrappers;
//! * [`faults`] — failure injection: flaky, delayed or dying services for
//!   robustness tests;
//! * [`fleet`] — deterministic fleet parameterization for massive
//!   environments: zipf-skewed per-service latency and failure draws, all
//!   pure functions of `(seed, index)`;
//! * [`health`] — rolling per-service health (failure rate,
//!   consecutive-error count, last-seen instant) fed by invocation
//!   outcomes through [`serena_core::telemetry::InvocationObserver`];
//! * [`resilience`] — the β resilience middleware: per-service deadline,
//!   bounded retry with jittered exponential backoff, and a
//!   health-informed circuit breaker, composable onto any invoker via
//!   [`serena_core::service::InvokerStack`];
//! * [`discovery`] — turning "which services implement prototype ψ?" into
//!   X-Relation rows, the data backing the PEMS service-discovery queries;
//! * [`directory`] — the unified, transport-agnostic [`ServiceDirectory`]
//!   trait (resolve, register/deregister, join/leave subscription,
//!   metadata, invocation) and its [`NodeDirectory`] implementation with
//!   multi-node peer links and heartbeat-driven liveness;
//! * [`transport`] — the node-to-node seam: [`Transport`] with an
//!   in-process hub ([`InProcTransport`], the deterministic test
//!   default) and real TCP/UDS sockets ([`SocketTransport`]), speaking
//!   length-prefixed frames in the `serena-core::snapshot` codec;
//! * [`node`] — serving a directory to peers ([`ServiceNode`]) and
//!   proxying remote services locally ([`RemoteService`]), including
//!   standby checkpoint replication.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod bus;
pub mod devices;
pub mod directory;
pub mod discovery;
pub mod faults;
pub mod fleet;
pub mod health;
pub mod node;
pub mod registry;
pub mod resilience;
pub mod transport;

pub use bus::{BusConfig, CoreErm, DiscoveryBus, LocalErm};
pub use directory::{DirectoryEvent, NodeDirectory, PeerStatus, ServiceDirectory};
pub use health::{HealthStatus, HealthTracker, ServiceHealth};
pub use node::{NodeHandle, RemoteNodeClient, RemoteService, ServiceNode};
pub use registry::{DynamicRegistry, RegistryEvent};
pub use resilience::{
    BreakerState, ResilienceCounters, ResiliencePolicy, ResilienceState, ResilientInvoker,
    ResilientLayer,
};
pub use transport::{Frame, InProcTransport, SocketTransport, Transport, TransportError};
