//! Dynamic service registry (the core Environment Resource Manager's
//! service table, §5.1).
//!
//! Extends the semantics of [`serena_core::service::StaticRegistry`] with:
//!
//! * registration/unregistration **events**, so discovery queries can react
//!   to the set of available services changing mid-query ("new temperature
//!   sensors have been dynamically discovered and integrated in the
//!   temperature stream without the need to stop the continuous query");
//! * per-service metadata (the Local ERM a service came from).

use std::collections::HashMap;
use std::sync::Arc;

use serena_core::sync::{Mutex, RwLock};

use serena_core::error::EvalError;
use serena_core::prototype::Prototype;
use serena_core::service::{fault_to_eval_error, validate_invocation_result, Invoker, Service};
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::ServiceRef;

/// A registry change notification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryEvent {
    /// A service joined (reference, prototype names, origin LERM).
    Registered {
        /// The service's reference.
        reference: ServiceRef,
        /// Names of the prototypes it implements.
        prototypes: Vec<String>,
        /// The Local ERM it was announced by (empty for direct
        /// registration).
        origin: String,
    },
    /// A service left.
    Unregistered {
        /// The departed service's reference.
        reference: ServiceRef,
    },
}

struct Entry {
    service: Arc<dyn Service>,
    origin: String,
}

/// Thread-safe dynamic service registry with change events.
#[derive(Default)]
pub struct DynamicRegistry {
    services: RwLock<HashMap<ServiceRef, Entry>>,
    events: Mutex<Vec<RegistryEvent>>,
}

impl DynamicRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a service directly (no LERM origin).
    pub fn register(&self, reference: impl Into<ServiceRef>, service: Arc<dyn Service>) {
        self.register_from(reference, service, "");
    }

    /// Register a service announced by `origin` (a Local ERM id).
    pub fn register_from(
        &self,
        reference: impl Into<ServiceRef>,
        service: Arc<dyn Service>,
        origin: impl Into<String>,
    ) {
        let reference = reference.into();
        let origin = origin.into();
        let prototypes = service
            .prototypes()
            .iter()
            .map(|p| p.name().to_string())
            .collect();
        self.services.write().insert(
            reference.clone(),
            Entry {
                service,
                origin: origin.clone(),
            },
        );
        self.events.lock().push(RegistryEvent::Registered {
            reference,
            prototypes,
            origin,
        });
    }

    /// Unregister a service. Returns `true` if it was present.
    pub fn unregister(&self, reference: &ServiceRef) -> bool {
        let removed = self.services.write().remove(reference).is_some();
        if removed {
            self.events.lock().push(RegistryEvent::Unregistered {
                reference: reference.clone(),
            });
        }
        removed
    }

    /// Drain all pending registry events (non-blocking).
    pub fn drain_events(&self) -> Vec<RegistryEvent> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.services.read().len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.services.read().is_empty()
    }

    /// Whether `reference` is currently registered.
    pub fn contains(&self, reference: &ServiceRef) -> bool {
        self.services.read().contains_key(reference)
    }

    /// The service implementation registered under `reference`, if any.
    pub fn resolve(&self, reference: &ServiceRef) -> Option<Arc<dyn Service>> {
        self.services
            .read()
            .get(reference)
            .map(|e| Arc::clone(&e.service))
    }

    /// Origin LERM of a service, if registered.
    pub fn origin_of(&self, reference: &ServiceRef) -> Option<String> {
        self.services
            .read()
            .get(reference)
            .map(|e| e.origin.clone())
    }

    /// All registered references (sorted — deterministic output).
    pub fn references(&self) -> Vec<ServiceRef> {
        let mut refs: Vec<ServiceRef> = self.services.read().keys().cloned().collect();
        refs.sort();
        refs
    }
}

impl Invoker for DynamicRegistry {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        let service = {
            let guard = self.services.read();
            guard.get(service_ref).map(|e| Arc::clone(&e.service))
        }
        .ok_or_else(|| EvalError::UnknownService {
            reference: service_ref.to_string(),
        })?;
        if !service
            .prototypes()
            .iter()
            .any(|p| p.name() == prototype.name())
        {
            return Err(EvalError::PrototypeNotImplemented {
                service: service_ref.to_string(),
                prototype: prototype.name().to_string(),
            });
        }
        let result = service
            .invoke_classified(prototype, input, at)
            .map_err(|fault| fault_to_eval_error(fault, service_ref, prototype))?;
        validate_invocation_result(prototype, service_ref, &result)?;
        Ok(result)
    }

    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
        let guard = self.services.read();
        let mut refs: Vec<ServiceRef> = guard
            .iter()
            .filter(|(_, e)| e.service.prototypes().iter().any(|p| p.name() == prototype))
            .map(|(r, _)| r.clone())
            .collect();
        refs.sort();
        refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::prototype::examples as protos;
    use serena_core::service::fixtures;

    #[test]
    fn register_unregister_with_events() {
        let reg = DynamicRegistry::new();
        reg.register_from("sensor01", fixtures::temperature_sensor(1), "lerm-A");
        reg.register("sensor02", fixtures::temperature_sensor(2));
        assert_eq!(reg.len(), 2);
        assert_eq!(
            reg.origin_of(&ServiceRef::new("sensor01")).unwrap(),
            "lerm-A"
        );

        let events = reg.drain_events();
        assert_eq!(events.len(), 2);
        assert!(
            matches!(&events[0], RegistryEvent::Registered { reference, .. }
            if reference.as_str() == "sensor01")
        );

        assert!(reg.unregister(&ServiceRef::new("sensor01")));
        assert!(!reg.unregister(&ServiceRef::new("sensor01")));
        let events = reg.drain_events();
        assert_eq!(
            events,
            vec![RegistryEvent::Unregistered {
                reference: ServiceRef::new("sensor01")
            }]
        );
    }

    #[test]
    fn invoker_trait_resolves() {
        let reg = DynamicRegistry::new();
        reg.register("sensor01", fixtures::temperature_sensor(1));
        let out = reg
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor01"),
                &Tuple::empty(),
                Instant(1),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert!(reg
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("ghost"),
                &Tuple::empty(),
                Instant(1),
            )
            .is_err());
    }

    #[test]
    fn providers_of_updates_with_churn() {
        let reg = DynamicRegistry::new();
        reg.register("sensor01", fixtures::temperature_sensor(1));
        reg.register("camera01", fixtures::camera(1));
        assert_eq!(reg.providers_of("getTemperature").len(), 1);
        reg.register("sensor02", fixtures::temperature_sensor(2));
        assert_eq!(reg.providers_of("getTemperature").len(), 2);
        reg.unregister(&ServiceRef::new("sensor01"));
        let names: Vec<String> = reg
            .providers_of("getTemperature")
            .iter()
            .map(|r| r.to_string())
            .collect();
        assert_eq!(names, vec!["sensor02"]);
    }

    #[test]
    fn replace_registration_keeps_single_entry() {
        let reg = DynamicRegistry::new();
        reg.register("s", fixtures::temperature_sensor(1));
        reg.register("s", fixtures::temperature_sensor(9));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.references().len(), 1);
    }
}
