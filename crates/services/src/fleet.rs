//! Deterministic fleet parameterization for massive simulated
//! environments.
//!
//! §7 of the paper names a "benchmark for pervasive environments" as future
//! work; building one needs fleets of 10⁴–10⁶ devices whose per-service
//! latencies and failure rates follow realistic, *skewed* distributions —
//! a handful of slow or flaky devices, a long tail of fast healthy ones.
//! This module provides those draws as pure functions of `(seed, index)`:
//! no RNG state, no wall clock, so the same specification replays
//! byte-identically (the property the scale benchmarks and the determinism
//! regression tests are built on).
//!
//! * [`mix64`] — the splitmix64 finalizer shared with the simulated
//!   devices, exported for downstream spec builders;
//! * [`LatencyProfile`] — zipf-skewed per-service wall-clock latencies;
//! * [`FailureProfile`] — zipf-skewed per-service failure rates, realized
//!   either as replayable [`FaultPolicy::Intermittent`] duty cycles or (for
//!   fleets shared by concurrent queries) as the pure-per-instant
//!   [`FlakyService`];
//! * [`FlakyService`] — a failure decorator whose outcome is a pure
//!   function of `(seed, instant)`. Unlike
//!   [`FaultyService`](crate::faults::FaultyService), whose attempt counter
//!   is shared mutable state (so *which* of several concurrent queries
//!   observes a duty-cycle failure is a race), a flaky service fails
//!   identically for every caller at a given instant — the property the
//!   determinism regression relies on;
//! * [`SlowService`] — a per-*service* latency decorator (unlike
//!   [`SlowInvoker`](crate::faults::SlowInvoker), which delays every call
//!   of an invoker uniformly). Sleeping never affects logical outputs, so
//!   latency injection preserves determinism.

use std::sync::Arc;
use std::time::Duration;

use serena_core::prototype::Prototype;
use serena_core::service::Service;
use serena_core::time::Instant;
use serena_core::tuple::Tuple;

use crate::faults::FaultPolicy;

/// Deterministic 64-bit mix (splitmix64 finalizer) — the same derivation
/// the simulated devices use, exported so environment generators can draw
/// per-device parameters from `(seed, index, salt)` without an RNG.
pub fn mix64(seed: u64, t: u64, salt: u64) -> u64 {
    crate::devices::mix(seed, t, salt)
}

/// A device's zipf rank in a fleet of `n`: a deterministic pseudo-random
/// value in `1..=n` drawn from `(seed, index, salt)`. Rank 1 is the "head"
/// of the distribution (slowest / flakiest); most devices land deep in the
/// tail.
fn zipf_rank(seed: u64, index: u64, n: u64, salt: u64) -> u64 {
    1 + mix64(seed, index, salt) % n.max(1)
}

/// Zipf-skewed per-service latencies: the rank-1 service sleeps `max`, the
/// rank-r service sleeps `max / r^exponent`. With the default exponent of
/// 1.0 a 10⁴-device fleet has a handful of millisecond-slow devices and a
/// long tail of effectively instant ones — the traffic shape a pervasive
/// deployment actually presents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// Latency of the rank-1 (slowest) service.
    pub max: Duration,
    /// Zipf exponent `s` (≥ 0; 0 makes every service equally slow).
    pub exponent: f64,
}

impl LatencyProfile {
    /// A profile with the given head latency and exponent.
    pub fn new(max: Duration, exponent: f64) -> Self {
        LatencyProfile { max, exponent }
    }

    /// The latency of device `index` in a fleet of `fleet_size`, drawn
    /// deterministically from `seed`.
    pub fn latency_for(&self, seed: u64, index: u64, fleet_size: u64) -> Duration {
        let rank = zipf_rank(seed, index, fleet_size, 0x1A7E) as f64;
        let ns = self.max.as_nanos() as f64 / rank.powf(self.exponent);
        Duration::from_nanos(ns as u64)
    }
}

/// Zipf-skewed per-service failure rates: the rank-1 service fails at
/// `max_rate`, the rank-r service at `max_rate / r^exponent`.
///
/// Rates are *realized* as [`FaultPolicy::Intermittent`] duty cycles over a
/// 100-call period, so the failures a query observes are a replayable
/// function of the invocation sequence — not a per-call coin flip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureProfile {
    /// Failure rate of the rank-1 (flakiest) service, in `0.0..=1.0`.
    pub max_rate: f64,
    /// Zipf exponent `s` (≥ 0; 0 makes every service equally flaky).
    pub exponent: f64,
}

impl FailureProfile {
    /// A profile with the given head failure rate and exponent.
    pub fn new(max_rate: f64, exponent: f64) -> Self {
        FailureProfile {
            max_rate: max_rate.clamp(0.0, 1.0),
            exponent,
        }
    }

    /// The long-run failure rate of device `index` in a fleet of
    /// `fleet_size`, drawn deterministically from `seed`.
    pub fn rate_for(&self, seed: u64, index: u64, fleet_size: u64) -> f64 {
        let rank = zipf_rank(seed, index, fleet_size, 0xFA11) as f64;
        self.max_rate / rank.powf(self.exponent)
    }

    /// The rate realized as a [`FaultPolicy`]: an `Intermittent` duty cycle
    /// whose long-run rate rounds to [`Self::rate_for`] over a 100-call
    /// period, or [`FaultPolicy::None`] when the rate rounds to zero.
    pub fn policy_for(&self, seed: u64, index: u64, fleet_size: u64) -> FaultPolicy {
        let fail = (self.rate_for(seed, index, fleet_size) * 100.0).round() as u64;
        match fail.min(100) {
            0 => FaultPolicy::None,
            f => FaultPolicy::Intermittent {
                fail: f,
                ok: 100 - f,
            },
        }
    }
}

/// A failure decorator that is a **pure function of the logical instant**:
/// at instant τ the service either fails for *every* caller or for none,
/// decided by `mix64(seed, τ)` against the configured rate. Concurrent
/// queries invoking the same device therefore observe identical outcomes
/// regardless of scheduling — the fault realization massive-scale specs
/// use ([`FailureProfile`] supplies the per-device rate and seed).
pub struct FlakyService {
    inner: Arc<dyn Service>,
    seed: u64,
    rate_pct: u64,
}

impl FlakyService {
    /// Wrap `inner` so invocations at instant τ fail with long-run
    /// frequency `rate` (clamped to `0.0..=1.0`, rounded to whole
    /// percent). A rate rounding to zero returns `inner` unwrapped.
    pub fn wrap(inner: Arc<dyn Service>, seed: u64, rate: f64) -> Arc<dyn Service> {
        let rate_pct = (rate.clamp(0.0, 1.0) * 100.0).round() as u64;
        if rate_pct == 0 {
            inner
        } else {
            Arc::new(FlakyService {
                inner,
                seed,
                rate_pct,
            })
        }
    }

    /// Whether the service fails at `at` — pure, so callers (and test
    /// oracles) can predict the schedule.
    pub fn fails_at(&self, at: Instant) -> bool {
        mix64(self.seed, at.ticks(), 0xF1A6) % 100 < self.rate_pct
    }
}

impl Service for FlakyService {
    fn prototypes(&self) -> Vec<Arc<Prototype>> {
        self.inner.prototypes()
    }

    fn invoke(
        &self,
        prototype: &Prototype,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, String> {
        if self.fails_at(at) {
            Err("injected fault: device unreachable".to_string())
        } else {
            self.inner.invoke(prototype, input, at)
        }
    }
}

/// A decorator adding a fixed wall-clock latency to one [`Service`]. The
/// sleep happens on the invoking thread and never changes the inner
/// service's logical output, so injected latency is invisible to the
/// algebra — only to the clock.
pub struct SlowService {
    inner: Arc<dyn Service>,
    delay: Duration,
}

impl SlowService {
    /// Wrap `inner` so every invocation sleeps `delay` first. A zero delay
    /// returns `inner` unwrapped (no decoration cost for the fleet tail).
    pub fn wrap(inner: Arc<dyn Service>, delay: Duration) -> Arc<dyn Service> {
        if delay.is_zero() {
            inner
        } else {
            Arc::new(SlowService { inner, delay })
        }
    }

    /// The injected per-call latency.
    pub fn delay(&self) -> Duration {
        self.delay
    }
}

impl Service for SlowService {
    fn prototypes(&self) -> Vec<Arc<Prototype>> {
        self.inner.prototypes()
    }

    fn invoke(
        &self,
        prototype: &Prototype,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, String> {
        std::thread::sleep(self.delay);
        self.inner.invoke(prototype, input, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::prototype::examples as protos;
    use serena_core::service::fixtures;

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(7, 3, 1), mix64(7, 3, 1));
        assert_ne!(mix64(7, 3, 1), mix64(7, 3, 2));
    }

    #[test]
    fn latency_profile_is_skewed_and_replayable() {
        let p = LatencyProfile::new(Duration::from_millis(10), 1.0);
        let n = 1000u64;
        let draws: Vec<Duration> = (0..n).map(|i| p.latency_for(42, i, n)).collect();
        // replayable
        assert_eq!(
            draws,
            (0..n).map(|i| p.latency_for(42, i, n)).collect::<Vec<_>>()
        );
        // every draw is bounded by the head latency
        assert!(draws.iter().all(|d| *d <= Duration::from_millis(10)));
        // skew: the median is far below the mean (long tail of fast devices)
        let mut sorted = draws.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mean_ns: u64 = draws.iter().map(|d| d.as_nanos() as u64).sum::<u64>() / n;
        assert!(
            median.as_nanos() < mean_ns as u128,
            "median {median:?} not below mean {mean_ns}ns"
        );
        // a different seed draws a different assignment
        assert_ne!(
            draws,
            (0..n).map(|i| p.latency_for(43, i, n)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn failure_profile_rates_decay_with_rank() {
        let p = FailureProfile::new(0.5, 1.0);
        let n = 500u64;
        let rates: Vec<f64> = (0..n).map(|i| p.rate_for(9, i, n)).collect();
        assert!(rates.iter().all(|r| (0.0..=0.5).contains(r)));
        // most devices round to a zero-failure policy under the skew
        let healthy = (0..n)
            .filter(|i| matches!(p.policy_for(9, *i, n), FaultPolicy::None))
            .count();
        assert!(
            healthy > n as usize / 2,
            "only {healthy}/{n} devices healthy"
        );
        // at least the head of the distribution does fail
        assert!((0..n).any(|i| !matches!(p.policy_for(9, i, n), FaultPolicy::None)));
    }

    #[test]
    fn failure_policy_realizes_the_rate() {
        let p = FailureProfile::new(1.0, 0.0); // every device at 100%
        let policy = p.policy_for(1, 0, 10);
        assert!(matches!(
            policy,
            FaultPolicy::Intermittent { fail: 100, ok: 0 }
        ));
        let none = FailureProfile::new(0.0, 1.0).policy_for(1, 0, 10);
        assert!(matches!(none, FaultPolicy::None));
    }

    #[test]
    fn flaky_service_is_pure_per_instant() {
        let flaky = FlakyService::wrap(fixtures::temperature_sensor(2), 9, 0.5);
        let proto = protos::get_temperature();
        let mut failures = 0;
        for t in 0..100 {
            let a = flaky.invoke(&proto, &Tuple::empty(), Instant(t));
            let b = flaky.invoke(&proto, &Tuple::empty(), Instant(t));
            // every caller at the same instant sees the same outcome
            assert_eq!(a.is_err(), b.is_err());
            if a.is_err() {
                failures += 1;
            }
        }
        // the long-run rate is in the right ballpark for a 50% draw
        assert!((25..=75).contains(&failures), "{failures} failures");
        // zero rate is the identity
        let inner = fixtures::temperature_sensor(2);
        let plain = FlakyService::wrap(Arc::clone(&inner), 9, 0.001);
        assert!(Arc::ptr_eq(&inner, &plain));
    }

    #[test]
    fn slow_service_delays_but_preserves_output() {
        let inner = fixtures::temperature_sensor(4);
        let plain = inner
            .invoke(&protos::get_temperature(), &Tuple::empty(), Instant(3))
            .unwrap();
        let slow = SlowService::wrap(fixtures::temperature_sensor(4), Duration::from_millis(3));
        let started = std::time::Instant::now();
        let out = slow
            .invoke(&protos::get_temperature(), &Tuple::empty(), Instant(3))
            .unwrap();
        assert!(started.elapsed() >= Duration::from_millis(3));
        assert_eq!(out, plain);
        assert_eq!(slow.prototypes().len(), 1);
    }

    #[test]
    fn zero_delay_wrap_is_identity() {
        let inner = fixtures::temperature_sensor(4);
        let wrapped = SlowService::wrap(Arc::clone(&inner), Duration::ZERO);
        assert!(Arc::ptr_eq(&inner, &wrapped));
    }
}
