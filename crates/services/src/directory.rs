//! The unified, transport-agnostic service directory (§5.1, Fig. 1).
//!
//! Earlier PRs grew three overlapping surfaces for "what services exist
//! and how do I call them": the [`DynamicRegistry`](crate::registry)
//! (resolution + invocation), the discovery metadata store
//! (attribute key/values for β discovery queries) and the
//! [`DiscoveryBus`](crate::bus) (announcement latency). This module
//! collapses them behind one trait, [`ServiceDirectory`]:
//!
//! * **resolve / register / deregister** — the registry surface;
//! * **join/leave subscription** — [`ServiceDirectory::drain_events`]
//!   yields typed [`DirectoryEvent`]s;
//! * **metadata** — the discovery attribute store;
//! * **invocation** — `ServiceDirectory: Invoker`, so a directory drops
//!   into the β executor and the whole `InvokerStack` unchanged.
//!
//! [`NodeDirectory`] is the one implementation: a node id, the node's
//! registry + metadata, an append-only event log peers poll, and links
//! to remote peers whose services appear here as local proxies
//! ([`RemoteService`]). Liveness is
//! heartbeat-driven: every [`NodeDirectory::poll_peers`] round-trip
//! doubles as the heartbeat, and a peer that fails one is marked down
//! and its proxies deregistered — continuous queries observe the
//! departure exactly like a local unregistration. A later successful
//! poll re-syncs the full listing and the proxies return.

use std::collections::HashMap;
use std::sync::Arc;

use serena_core::sync::{Mutex, RwLock};

use serena_core::error::EvalError;
use serena_core::prototype::Prototype;
use serena_core::service::{Invoker, Service};
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::{ServiceRef, Value};

use crate::node::{RemoteNodeClient, RemoteService};
use crate::registry::{DynamicRegistry, RegistryEvent};
use crate::transport::{ServiceAd, Transport, TransportError, WireEvent};

/// A directory membership change, as observed by subscribers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryEvent {
    /// A service joined the directory.
    Joined {
        /// The service's reference.
        reference: ServiceRef,
        /// Names of the prototypes it implements.
        prototypes: Vec<String>,
        /// The Local ERM that announced it ("" for direct registration).
        origin: String,
    },
    /// A service left the directory.
    Left {
        /// The departed service's reference.
        reference: ServiceRef,
    },
}

/// The transport-agnostic service directory: resolution, join/leave
/// subscription, registration and discovery metadata behind one
/// object-safe trait. `ServiceDirectory: Invoker`, so every directory is
/// also the β executor's service-invocation hook.
pub trait ServiceDirectory: Invoker {
    /// This node's id.
    fn node(&self) -> &str;

    /// Register `service` under `reference`, announced by LERM `origin`
    /// ("" for direct registration). Subscribers observe a
    /// [`DirectoryEvent::Joined`].
    fn register_from(&self, reference: ServiceRef, service: Arc<dyn Service>, origin: String);

    /// Register `service` with no LERM origin.
    fn register(&self, reference: ServiceRef, service: Arc<dyn Service>) {
        self.register_from(reference, service, String::new());
    }

    /// Remove `reference`. Returns `true` if it was present; subscribers
    /// observe a [`DirectoryEvent::Left`].
    fn deregister(&self, reference: &ServiceRef) -> bool;

    /// The service implementation behind `reference`, if present (for a
    /// remote service this is its local proxy).
    fn resolve(&self, reference: &ServiceRef) -> Option<Arc<dyn Service>>;

    /// All registered references (sorted — deterministic output).
    fn references(&self) -> Vec<ServiceRef>;

    /// Number of registered services.
    fn len(&self) -> usize;

    /// True iff no services are registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `reference` is currently registered.
    fn contains(&self, reference: &ServiceRef) -> bool;

    /// Origin LERM of `reference`, if registered.
    fn origin_of(&self, reference: &ServiceRef) -> Option<String>;

    /// Set one discovery metadata attribute of `reference`.
    fn set_metadata(&self, reference: ServiceRef, key: &str, value: Value);

    /// One discovery metadata attribute of `reference`.
    fn metadata(&self, reference: &ServiceRef, key: &str) -> Option<Value>;

    /// All discovery metadata of `reference`, sorted by key.
    fn metadata_of(&self, reference: &ServiceRef) -> Vec<(String, Value)>;

    /// Drain the join/leave events accumulated since the previous drain
    /// (the subscribe surface — non-blocking, at-least-once per change).
    fn drain_events(&self) -> Vec<DirectoryEvent>;
}

struct LogEntry {
    event: DirectoryEvent,
    /// Whether the subject service is hosted by *this* node (proxies for
    /// remote services are excluded from what peers see, so service
    /// listings never loop through intermediate nodes).
    local: bool,
}

struct PeerLink {
    client: RemoteNodeClient,
    /// Cursor into the peer's event log.
    cursor: u64,
    /// Whether the last heartbeat/poll round-trip succeeded.
    alive: bool,
    /// Logical instant of the last successful round-trip.
    last_seen: Instant,
}

/// Health of one connected peer, as reported by
/// [`NodeDirectory::peer_status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerStatus {
    /// The peer's node id (learned during the hello handshake).
    pub node: String,
    /// The peer's address.
    pub addr: String,
    /// Whether the last poll round-trip succeeded.
    pub alive: bool,
    /// Logical instant of the last successful round-trip.
    pub last_seen: Instant,
    /// Number of this peer's services currently proxied here.
    pub services: usize,
}

/// The [`ServiceDirectory`] implementation: one node's registry,
/// metadata, event log and peer links.
///
/// The event log is append-only with absolute positions, so a peer that
/// reconnects after missing events re-syncs with a full listing and a
/// fresh cursor rather than guessing what it missed.
pub struct NodeDirectory {
    node: String,
    registry: Arc<DynamicRegistry>,
    metadata: RwLock<HashMap<ServiceRef, Vec<(String, Value)>>>,
    log: Mutex<Vec<LogEntry>>,
    local_cursor: Mutex<usize>,
    /// reference → node id of the peer hosting it (proxies only).
    remote_origin: RwLock<HashMap<ServiceRef, String>>,
    peers: Mutex<Vec<PeerLink>>,
}

impl NodeDirectory {
    /// A directory for node `node` with a fresh registry.
    pub fn new(node: impl Into<String>) -> Self {
        Self::with_registry(node, Arc::new(DynamicRegistry::new()))
    }

    /// A directory wrapping an existing registry (shared with e.g. a
    /// `CoreErm`, so bus-announced registrations surface here too).
    pub fn with_registry(node: impl Into<String>, registry: Arc<DynamicRegistry>) -> Self {
        NodeDirectory {
            node: node.into(),
            registry,
            metadata: RwLock::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
            local_cursor: Mutex::new(0),
            remote_origin: RwLock::new(HashMap::new()),
            peers: Mutex::new(Vec::new()),
        }
    }

    /// The underlying registry (shared with the core ERM / bus).
    pub fn registry(&self) -> &Arc<DynamicRegistry> {
        &self.registry
    }

    /// Set one discovery metadata attribute (convenience form accepting
    /// anything convertible to a [`ServiceRef`]).
    pub fn set(&self, reference: impl Into<ServiceRef>, key: &str, value: Value) {
        ServiceDirectory::set_metadata(self, reference.into(), key, value);
    }

    /// One metadata attribute (convenience form).
    pub fn get(&self, reference: impl Into<ServiceRef>, key: &str) -> Option<Value> {
        ServiceDirectory::metadata(self, &reference.into(), key)
    }

    /// Register a locally hosted service (convenience form accepting
    /// anything convertible to a [`ServiceRef`], mirroring [`Self::set`]).
    pub fn register(&self, reference: impl Into<ServiceRef>, service: Arc<dyn Service>) {
        ServiceDirectory::register(self, reference.into(), service);
    }

    /// Deregister a service (convenience form).
    pub fn deregister(&self, reference: impl Into<ServiceRef>) -> bool {
        ServiceDirectory::deregister(self, &reference.into())
    }

    /// Pump registry events (bus announcements, direct registrations)
    /// into the directory event log. Called implicitly by every reading
    /// surface; callers never need to invoke it directly.
    fn sync(&self) {
        let events = self.registry.drain_events();
        if events.is_empty() {
            return;
        }
        let remote = self.remote_origin.read();
        let mut log = self.log.lock();
        for event in events {
            let (entry, reference) = match event {
                RegistryEvent::Registered {
                    reference,
                    prototypes,
                    origin,
                } => (
                    DirectoryEvent::Joined {
                        reference: reference.clone(),
                        prototypes,
                        origin,
                    },
                    reference,
                ),
                RegistryEvent::Unregistered { reference } => (
                    DirectoryEvent::Left {
                        reference: reference.clone(),
                    },
                    reference,
                ),
            };
            log.push(LogEntry {
                event: entry,
                local: !remote.contains_key(&reference),
            });
        }
    }

    /// Events for *locally hosted* services after absolute log position
    /// `after`, with the caller's next cursor. This is what peers poll.
    pub fn events_since(&self, after: u64) -> (u64, Vec<DirectoryEvent>) {
        self.sync();
        let log = self.log.lock();
        let start = (after as usize).min(log.len());
        let events = log[start..]
            .iter()
            .filter(|e| e.local)
            .map(|e| e.event.clone())
            .collect();
        (log.len() as u64, events)
    }

    /// Current absolute event-log position (the cursor a fresh listing
    /// pairs with).
    pub fn log_position(&self) -> u64 {
        self.sync();
        self.log.lock().len() as u64
    }

    /// The advertisement for `reference`, if it is hosted locally.
    pub fn advertise(&self, reference: &ServiceRef) -> Option<ServiceAd> {
        if self.remote_origin.read().contains_key(reference) {
            return None;
        }
        let service = self.registry.resolve(reference)?;
        Some(ServiceAd {
            reference: reference.clone(),
            origin: self.registry.origin_of(reference).unwrap_or_default(),
            prototypes: service.prototypes(),
            metadata: ServiceDirectory::metadata_of(self, reference),
        })
    }

    /// Advertisements for every locally hosted service (sorted by
    /// reference), paired with the log position of the listing.
    pub fn advertise_all(&self) -> (u64, Vec<ServiceAd>) {
        let seq = self.log_position();
        let ads = self
            .registry
            .references()
            .iter()
            .filter_map(|r| self.advertise(r))
            .collect();
        (seq, ads)
    }

    /// Connect to the peer node listening at `addr` and import its
    /// services as local proxies. Returns the peer's node id.
    pub fn connect_peer(
        &self,
        transport: Arc<dyn Transport>,
        addr: &str,
    ) -> Result<String, TransportError> {
        let client = RemoteNodeClient::connect(transport, addr, &self.node)?;
        let node = client.node().to_string();
        // a self-link would shadow every local service with a proxy to
        // this very node, turning each β call into an infinite relay
        if node == self.node {
            return Err(TransportError::Protocol(format!(
                "node `{node}` refuses to link to itself"
            )));
        }
        let (seq, services) = client.list_services()?;
        for ad in services {
            self.adopt(&node, &client, ad);
        }
        self.peers.lock().push(PeerLink {
            client,
            cursor: seq,
            alive: true,
            last_seen: Instant(0),
        });
        Ok(node)
    }

    /// Register a proxy for a remote service advertised by `node`.
    fn adopt(&self, node: &str, client: &RemoteNodeClient, ad: ServiceAd) {
        // record the remote origin *first* so sync() classifies the
        // registration event as non-local (never re-advertised to peers)
        self.remote_origin
            .write()
            .insert(ad.reference.clone(), node.to_string());
        {
            let mut meta = self.metadata.write();
            let slot = meta.entry(ad.reference.clone()).or_default();
            for (k, v) in &ad.metadata {
                match slot.binary_search_by(|(q, _)| q.as_str().cmp(k)) {
                    Ok(i) => slot[i].1 = v.clone(),
                    Err(i) => slot.insert(i, (k.clone(), v.clone())),
                }
            }
        }
        let proxy = RemoteService::new(client.share(), ad.reference.clone(), ad.prototypes);
        self.registry
            .register_from(ad.reference, Arc::new(proxy), ad.origin);
    }

    /// Drop every proxy imported from `node` (the peer died or is being
    /// re-synced).
    fn evict(&self, node: &str) {
        let victims: Vec<ServiceRef> = self
            .remote_origin
            .read()
            .iter()
            .filter(|(_, n)| n.as_str() == node)
            .map(|(r, _)| r.clone())
            .collect();
        let mut victims = victims;
        victims.sort();
        for reference in victims {
            self.registry.unregister(&reference);
            self.metadata.write().remove(&reference);
            self.remote_origin.write().remove(&reference);
        }
    }

    /// Poll every connected peer once: apply its join/leave events,
    /// refresh liveness, and attempt re-sync of peers marked down. The
    /// successful round-trip *is* the heartbeat; one failure marks the
    /// peer down and evicts its proxies, so β calls routed at it fail
    /// fast as [`EvalError::UnknownService`] rather than hanging.
    ///
    /// Called once per tick by the PEMS engine, before discovery
    /// refresh, so membership changes land with the same timing as a
    /// local bus announcement.
    pub fn poll_peers(&self, now: Instant) {
        let mut peers = self.peers.lock();
        for peer in peers.iter_mut() {
            if peer.alive {
                match peer.client.poll_events(peer.cursor) {
                    Ok((next, events)) => {
                        peer.cursor = next;
                        peer.last_seen = now;
                        let node = peer.client.node().to_string();
                        for event in events {
                            match event {
                                WireEvent::Joined(ad) => self.adopt(&node, &peer.client, ad),
                                WireEvent::Left(reference) => {
                                    if self
                                        .remote_origin
                                        .read()
                                        .get(&reference)
                                        .is_some_and(|n| n == &node)
                                    {
                                        self.registry.unregister(&reference);
                                        self.metadata.write().remove(&reference);
                                        self.remote_origin.write().remove(&reference);
                                    }
                                }
                            }
                        }
                    }
                    Err(_) => {
                        peer.alive = false;
                        self.evict(peer.client.node());
                    }
                }
            } else {
                // down: retry with a full re-sync (stale cursors are
                // useless after a server restart)
                if let Ok((seq, services)) = peer.client.resync() {
                    let node = peer.client.node().to_string();
                    self.evict(&node);
                    for ad in services {
                        self.adopt(&node, &peer.client, ad);
                    }
                    peer.cursor = seq;
                    peer.alive = true;
                    peer.last_seen = now;
                }
            }
        }
    }

    /// Liveness and proxy counts for every connected peer.
    pub fn peer_status(&self) -> Vec<PeerStatus> {
        let origin = self.remote_origin.read();
        self.peers
            .lock()
            .iter()
            .map(|p| PeerStatus {
                node: p.client.node().to_string(),
                addr: p.client.addr().to_string(),
                alive: p.alive,
                last_seen: p.last_seen,
                services: origin
                    .values()
                    .filter(|n| n.as_str() == p.client.node())
                    .count(),
            })
            .collect()
    }

    /// Number of connected peers (alive or down).
    pub fn peer_count(&self) -> usize {
        self.peers.lock().len()
    }

    /// Whether `reference` is a proxy for a service on another node, and
    /// if so which one.
    pub fn hosted_by(&self, reference: &ServiceRef) -> Option<String> {
        self.remote_origin.read().get(reference).cloned()
    }
}

impl ServiceDirectory for NodeDirectory {
    fn node(&self) -> &str {
        &self.node
    }

    fn register_from(&self, reference: ServiceRef, service: Arc<dyn Service>, origin: String) {
        self.registry.register_from(reference, service, origin);
        self.sync();
    }

    fn deregister(&self, reference: &ServiceRef) -> bool {
        let removed = self.registry.unregister(reference);
        if removed {
            self.metadata.write().remove(reference);
            self.remote_origin.write().remove(reference);
            self.sync();
        }
        removed
    }

    fn resolve(&self, reference: &ServiceRef) -> Option<Arc<dyn Service>> {
        self.registry.resolve(reference)
    }

    fn references(&self) -> Vec<ServiceRef> {
        self.registry.references()
    }

    fn len(&self) -> usize {
        self.registry.len()
    }

    fn contains(&self, reference: &ServiceRef) -> bool {
        self.registry.contains(reference)
    }

    fn origin_of(&self, reference: &ServiceRef) -> Option<String> {
        self.registry.origin_of(reference)
    }

    fn set_metadata(&self, reference: ServiceRef, key: &str, value: Value) {
        let mut meta = self.metadata.write();
        let slot = meta.entry(reference).or_default();
        match slot.binary_search_by(|(q, _)| q.as_str().cmp(key)) {
            Ok(i) => slot[i].1 = value,
            Err(i) => slot.insert(i, (key.to_string(), value)),
        }
    }

    fn metadata(&self, reference: &ServiceRef, key: &str) -> Option<Value> {
        self.metadata.read().get(reference).and_then(|slot| {
            slot.binary_search_by(|(q, _)| q.as_str().cmp(key))
                .ok()
                .map(|i| slot[i].1.clone())
        })
    }

    fn metadata_of(&self, reference: &ServiceRef) -> Vec<(String, Value)> {
        self.metadata
            .read()
            .get(reference)
            .cloned()
            .unwrap_or_default()
    }

    fn drain_events(&self) -> Vec<DirectoryEvent> {
        self.sync();
        let log = self.log.lock();
        let mut cursor = self.local_cursor.lock();
        let start = (*cursor).min(log.len());
        let events = log[start..].iter().map(|e| e.event.clone()).collect();
        *cursor = log.len();
        events
    }
}

impl Invoker for NodeDirectory {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        self.registry.invoke(prototype, service_ref, input, at)
    }

    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
        self.registry.providers_of(prototype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::prototype::examples as protos;
    use serena_core::service::fixtures;

    #[test]
    fn register_resolve_events_and_metadata() {
        let dir = NodeDirectory::new("n1");
        assert_eq!(ServiceDirectory::node(&dir), "n1");
        ServiceDirectory::register(
            &dir,
            ServiceRef::new("sensor01"),
            fixtures::temperature_sensor(1),
        );
        dir.set("sensor01", "location", Value::str("office"));

        assert!(dir.contains(&ServiceRef::new("sensor01")));
        assert!(ServiceDirectory::resolve(&dir, &ServiceRef::new("sensor01")).is_some());
        assert_eq!(dir.get("sensor01", "location"), Some(Value::str("office")));
        assert_eq!(
            ServiceDirectory::metadata_of(&dir, &ServiceRef::new("sensor01")),
            vec![("location".to_string(), Value::str("office"))]
        );

        let events = ServiceDirectory::drain_events(&dir);
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            DirectoryEvent::Joined { reference, .. } if reference.as_str() == "sensor01"
        ));

        assert!(dir.deregister(ServiceRef::new("sensor01")));
        let events = ServiceDirectory::drain_events(&dir);
        assert_eq!(
            events,
            vec![DirectoryEvent::Left {
                reference: ServiceRef::new("sensor01")
            }]
        );
        // metadata evicted with the service
        assert_eq!(dir.get("sensor01", "location"), None);
    }

    #[test]
    fn directory_is_an_invoker() {
        let dir = NodeDirectory::new("n1");
        ServiceDirectory::register(
            &dir,
            ServiceRef::new("sensor01"),
            fixtures::temperature_sensor(1),
        );
        let out = dir
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor01"),
                &Tuple::empty(),
                Instant(1),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(dir.providers_of("getTemperature").len(), 1);
    }

    #[test]
    fn events_since_excludes_nothing_when_all_local() {
        let dir = NodeDirectory::new("n1");
        ServiceDirectory::register(&dir, ServiceRef::new("a"), fixtures::temperature_sensor(1));
        ServiceDirectory::register(&dir, ServiceRef::new("b"), fixtures::temperature_sensor(2));
        let (next, events) = dir.events_since(0);
        assert_eq!(next, 2);
        assert_eq!(events.len(), 2);
        // cursor semantics: nothing new after `next`
        let (next2, events) = dir.events_since(next);
        assert_eq!(next2, next);
        assert!(events.is_empty());
    }

    #[test]
    fn advertise_carries_prototypes_and_metadata() {
        let dir = NodeDirectory::new("n1");
        ServiceDirectory::register_from(
            &dir,
            ServiceRef::new("sensor01"),
            fixtures::temperature_sensor(1),
            "building".to_string(),
        );
        dir.set("sensor01", "location", Value::str("office"));
        let ad = dir.advertise(&ServiceRef::new("sensor01")).unwrap();
        assert_eq!(ad.origin, "building");
        assert_eq!(ad.prototypes.len(), 1);
        assert_eq!(ad.prototypes[0].name(), "getTemperature");
        assert_eq!(
            ad.metadata,
            vec![("location".to_string(), Value::str("office"))]
        );
        let (_, ads) = dir.advertise_all();
        assert_eq!(ads.len(), 1);
    }
}
