//! The resilience layer for β invocations: deadline, retry/backoff,
//! circuit breaking.
//!
//! The paper's services are "dynamic, volatile" (§2.1) and §5.2 calls for
//! robustness experiments — yet a raw [`Invoker`] surfaces every transient
//! fault straight into the query. [`ResilientInvoker`] is an
//! [`InvokerLayer`] that wraps any invoker with three independent,
//! per-service mechanisms, all configured by a [`ResiliencePolicy`]:
//!
//! * **deadline** — invocations taking longer than
//!   [`ResiliencePolicy::deadline`] are converted into
//!   [`EvalError::DeadlineExceeded`] (a *soft* deadline: the call is not
//!   cancelled, its late result is discarded);
//! * **retry with backoff** — errors classified transient
//!   ([`EvalError::InvocationFailed`], [`EvalError::DeadlineExceeded`]) are
//!   retried up to [`ResiliencePolicy::max_retries`] times, sleeping an
//!   exponentially growing, deterministically jittered backoff between
//!   attempts;
//! * **circuit breaking** — after
//!   [`ResiliencePolicy::breaker_threshold`] consecutive failures (the
//!   larger of the layer's own count and the [`HealthTracker`]'s view, when
//!   one is attached) the service's breaker opens: calls fail fast with
//!   [`EvalError::CircuitOpen`] without touching the service, until
//!   [`ResiliencePolicy::breaker_cooldown`] logical instants pass and the
//!   breaker half-opens to let probe calls through (closed → open →
//!   half-open).
//!
//! Breaker state and counters live in a shared [`ResilienceState`] so they
//! survive across ticks (the invoker stack is rebuilt per tick in the PEMS
//! runtime). Graceful degradation of the β *output* — emitting partial
//! results instead of erroring — is the executor's side of the contract:
//! see [`DegradePolicy`](serena_core::ops::DegradePolicy).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serena_core::error::EvalError;
use serena_core::prototype::Prototype;
use serena_core::service::{Invoker, InvokerLayer};
use serena_core::snapshot::{Reader, SnapshotError, Writer};
use serena_core::sync::{Mutex, RwLock};
use serena_core::telemetry::{Counter, FlightRecorder, MetricsRegistry, TraceEvent, TraceSink};
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::ServiceRef;

use crate::health::HealthTracker;

/// Everything the resilience layer is allowed to do on behalf of one
/// invocation, per service. The default ([`ResiliencePolicy::disabled`]) is
/// fully transparent: no deadline, no retries, no breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Retries after the first failed attempt (0 = no retries).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry (0 = no sleeping).
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: Duration,
    /// Soft per-invocation deadline (None = unbounded).
    pub deadline: Option<Duration>,
    /// Consecutive failures that open a service's breaker (0 = breaker
    /// disabled).
    pub breaker_threshold: u32,
    /// Logical instants an open breaker waits before half-opening.
    pub breaker_cooldown: u64,
    /// Probe invocations admitted while half-open (clamped to ≥ 1).
    pub half_open_probes: u32,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy::disabled()
    }
}

impl ResiliencePolicy {
    /// Fully transparent: no deadline, no retries, no breaker. The invoker
    /// stack skips the resilience layer entirely under this policy.
    pub fn disabled() -> Self {
        ResiliencePolicy {
            max_retries: 0,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            deadline: None,
            breaker_threshold: 0,
            breaker_cooldown: 0,
            half_open_probes: 1,
        }
    }

    /// A reasonable starting point: 2 retries with 1 ms → 20 ms backoff,
    /// breaker opening after 5 consecutive failures for 4 instants.
    pub fn standard() -> Self {
        ResiliencePolicy {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            deadline: None,
            breaker_threshold: 5,
            breaker_cooldown: 4,
            half_open_probes: 1,
        }
    }

    /// Whether this policy does nothing at all (lets the stack skip the
    /// layer).
    pub fn is_disabled(&self) -> bool {
        self.max_retries == 0 && self.deadline.is_none() && self.breaker_threshold == 0
    }

    /// Replace the retry budget.
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Replace the backoff schedule (`base` doubling per retry, capped).
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Replace the soft per-invocation deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Replace the breaker configuration (`threshold` consecutive failures
    /// → open for `cooldown` instants).
    pub fn with_breaker(mut self, threshold: u32, cooldown: u64) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// The backoff delay before retry number `attempt` (1-based), before
    /// jitter: `base × 2^(attempt-1)`, capped.
    fn backoff_for(&self, attempt: u32) -> Duration {
        if self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let raw = match 1u32.checked_shl(attempt.saturating_sub(1)) {
            Some(factor) => self
                .backoff_base
                .checked_mul(factor)
                .unwrap_or(self.backoff_cap),
            None => self.backoff_cap, // 2^31+ × base saturates at the cap
        };
        raw.min(self.backoff_cap)
    }
}

/// Where one service's circuit breaker currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow through normally.
    Closed,
    /// Calls are rejected with [`EvalError::CircuitOpen`] until `until`.
    Open {
        /// First instant at which the breaker will half-open.
        until: Instant,
    },
    /// A limited number of probe calls are admitted; one success closes
    /// the breaker, one failure reopens it.
    HalfOpen {
        /// Probe admissions left at this state snapshot.
        probes_left: u32,
    },
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open { until } => write!(f, "open(until {until})"),
            BreakerState::HalfOpen { probes_left } => {
                write!(f, "half-open({probes_left} probes left)")
            }
        }
    }
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u64,
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
        }
    }
}

/// Totals accumulated by a [`ResilienceState`] across all services.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Retry attempts performed (beyond each invocation's first attempt).
    pub retries: u64,
    /// Invocations converted to [`EvalError::DeadlineExceeded`].
    pub timeouts: u64,
    /// Breaker transitions into [`BreakerState::Open`].
    pub breaker_opened: u64,
    /// Calls rejected fast with [`EvalError::CircuitOpen`].
    pub rejected: u64,
}

/// Shared, tick-surviving state of the resilience layer: per-service
/// breakers plus global counters. One `Arc<ResilienceState>` is created per
/// PEMS (or per test) and handed to every [`ResilientInvoker`] built over
/// it, so breakers keep their memory even though the invoker stack itself
/// is rebuilt per tick.
#[derive(Debug, Default)]
pub struct ResilienceState {
    breakers: Mutex<HashMap<ServiceRef, Breaker>>,
    /// Number of services currently holding a (non-default) breaker record.
    /// While zero — the steady state of a healthy environment — the breaker
    /// fast-paths skip the map lock entirely.
    engaged: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    breaker_opened: AtomicU64,
    rejected: AtomicU64,
}

impl ResilienceState {
    /// Fresh state: all breakers closed, all counters zero.
    pub fn new() -> Self {
        ResilienceState::default()
    }

    /// Snapshot the global counters.
    pub fn counters(&self) -> ResilienceCounters {
        ResilienceCounters {
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            breaker_opened: self.breaker_opened.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// The breaker state of one service ([`BreakerState::Closed`] if the
    /// service has never tripped anything).
    pub fn breaker_of(&self, service: &ServiceRef) -> BreakerState {
        self.breakers
            .lock()
            .get(service)
            .map(|b| b.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Every service with a non-default breaker record, ordered by
    /// reference.
    pub fn breakers(&self) -> Vec<(ServiceRef, BreakerState)> {
        let mut v: Vec<(ServiceRef, BreakerState)> = self
            .breakers
            .lock()
            .iter()
            .map(|(s, b)| (s.clone(), b.state))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Serialize counters and per-service breakers into a checkpoint
    /// (breakers in sorted service order, so the encoding is
    /// deterministic).
    pub fn export_state(&self, w: &mut Writer) {
        let c = self.counters();
        w.u64(c.retries)
            .u64(c.timeouts)
            .u64(c.breaker_opened)
            .u64(c.rejected);
        let breakers = self.breakers.lock();
        let mut entries: Vec<(&ServiceRef, &Breaker)> = breakers.iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
        w.usize(entries.len());
        for (s, b) in entries {
            w.str(s.as_str()).u64(b.consecutive_failures);
            match b.state {
                BreakerState::Closed => {
                    w.u8(0);
                }
                BreakerState::Open { until } => {
                    w.u8(1).u64(until.ticks());
                }
                BreakerState::HalfOpen { probes_left } => {
                    w.u8(2).u32(probes_left);
                }
            }
        }
    }

    /// Restore state written by [`ResilienceState::export_state`],
    /// replacing counters and breakers wholesale.
    pub fn import_state(&self, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let retries = r.u64()?;
        let timeouts = r.u64()?;
        let breaker_opened = r.u64()?;
        let rejected = r.u64()?;
        let n = r.usize()?;
        let mut map = HashMap::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            let sref = ServiceRef::new(r.str()?);
            let consecutive_failures = r.u64()?;
            let state = match r.u8()? {
                0 => BreakerState::Closed,
                1 => BreakerState::Open {
                    until: Instant(r.u64()?),
                },
                2 => BreakerState::HalfOpen {
                    probes_left: r.u32()?,
                },
                t => {
                    return Err(SnapshotError::Corrupt(format!("unknown breaker tag {t}")));
                }
            };
            map.insert(
                sref,
                Breaker {
                    state,
                    consecutive_failures,
                },
            );
        }
        self.retries.store(retries, Ordering::Relaxed);
        self.timeouts.store(timeouts, Ordering::Relaxed);
        self.breaker_opened.store(breaker_opened, Ordering::Relaxed);
        self.rejected.store(rejected, Ordering::Relaxed);
        let mut breakers = self.breakers.lock();
        self.engaged.store(map.len() as u64, Ordering::Relaxed);
        *breakers = map;
        Ok(())
    }
}

/// Cached per-service registry series.
#[derive(Clone)]
struct ResilienceSeries {
    retries: Arc<Counter>,
    timeouts: Arc<Counter>,
    breaker_opened: Arc<Counter>,
    rejected: Arc<Counter>,
    /// `serena_breaker_transitions_total{service,to}` for
    /// `to ∈ {closed, open, half_open}`, in that order.
    transitions: [Arc<Counter>; 3],
}

/// The resilience middleware: deadline + retry/backoff + circuit breaker
/// around any [`Invoker`]. See the [module docs](self) for the semantics
/// and [`ResilientLayer`] for the [`InvokerStack`]-friendly constructor.
///
/// [`InvokerStack`]: serena_core::service::InvokerStack
pub struct ResilientInvoker<'a, I> {
    inner: I,
    policy: ResiliencePolicy,
    state: Arc<ResilienceState>,
    health: Option<&'a HealthTracker>,
    registry: Option<&'a MetricsRegistry>,
    tracer: Option<&'a FlightRecorder>,
    trace: Option<&'a dyn TraceSink>,
    series: RwLock<HashMap<ServiceRef, ResilienceSeries>>,
}

impl<'a, I: Invoker> ResilientInvoker<'a, I> {
    /// Wrap `inner` under `policy` with fresh private state.
    pub fn new(inner: I, policy: ResiliencePolicy) -> Self {
        Self::with_state(inner, policy, Arc::new(ResilienceState::new()))
    }

    /// Wrap `inner` under `policy`, sharing `state` (breakers + counters)
    /// with other invokers built over it.
    pub fn with_state(inner: I, policy: ResiliencePolicy, state: Arc<ResilienceState>) -> Self {
        ResilientInvoker {
            inner,
            policy,
            state,
            health: None,
            registry: None,
            tracer: None,
            trace: None,
            series: RwLock::new(HashMap::new()),
        }
    }

    /// Let the breaker also consult `health`'s consecutive-error count, and
    /// record deadline conversions as failures there.
    pub fn with_health(mut self, health: &'a HealthTracker) -> Self {
        self.health = Some(health);
        self
    }

    /// Publish per-service `serena_resilience_*_total{service}` counters
    /// into `registry`.
    pub fn with_registry(mut self, registry: &'a MetricsRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Record one `beta.call` span per logical call into `tracer`,
    /// annotated with attempts/retries, breaker state, deadline and
    /// outcome; per-attempt spans from the instrumented layer below nest
    /// inside it.
    pub fn with_tracer(mut self, tracer: &'a FlightRecorder) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Emit a [`TraceEvent::BreakerTransition`] into `trace` on every
    /// closed → open → half-open → closed edge.
    pub fn with_trace(mut self, trace: &'a dyn TraceSink) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The shared state (for snapshots).
    pub fn state(&self) -> &Arc<ResilienceState> {
        &self.state
    }

    fn series_for(&self, registry: &MetricsRegistry, service: &ServiceRef) -> ResilienceSeries {
        if let Some(series) = self.series.read().get(service) {
            return series.clone();
        }
        let labels: [(&str, &str); 1] = [("service", service.as_str())];
        let transition = |to: &str| {
            registry.counter(
                "serena_breaker_transitions_total",
                &[("service", service.as_str()), ("to", to)],
            )
        };
        let series = ResilienceSeries {
            retries: registry.counter("serena_resilience_retries_total", &labels),
            timeouts: registry.counter("serena_resilience_timeouts_total", &labels),
            breaker_opened: registry.counter("serena_resilience_breaker_opened_total", &labels),
            rejected: registry.counter("serena_resilience_rejected_total", &labels),
            transitions: [
                transition("closed"),
                transition("open"),
                transition("half_open"),
            ],
        };
        self.series
            .write()
            .entry(service.clone())
            .or_insert(series)
            .clone()
    }

    fn bump(&self, service: &ServiceRef, pick: impl Fn(&ResilienceSeries) -> &Arc<Counter>) {
        if let Some(registry) = self.registry {
            pick(&self.series_for(registry, service)).inc();
        }
    }

    /// Publish one breaker edge: bump
    /// `serena_breaker_transitions_total{service,to}` and emit a
    /// [`TraceEvent::BreakerTransition`]. Labels: "closed" (index 0),
    /// "open" (1), "half_open" (2).
    fn breaker_transition(
        &self,
        service: &ServiceRef,
        at: Instant,
        from: &'static str,
        to: &'static str,
    ) {
        let to_index = match to {
            "closed" => 0,
            "open" => 1,
            _ => 2,
        };
        self.bump(service, |s| &s.transitions[to_index]);
        if let Some(trace) = self.trace {
            trace.emit(&TraceEvent::BreakerTransition {
                service: service.to_string(),
                at,
                from: from.to_string(),
                to: to.to_string(),
            });
        }
    }

    /// Gate one invocation through `service`'s breaker. Transitions
    /// open → half-open when the cooldown has elapsed at `at`.
    ///
    /// Services without a breaker record are implicitly
    /// [`BreakerState::Closed`]; while no record exists anywhere (no
    /// failure observed yet) this is a single relaxed atomic load.
    fn admit(&self, service: &ServiceRef, at: Instant) -> Result<(), EvalError> {
        if self.policy.breaker_threshold == 0 || self.state.engaged.load(Ordering::Relaxed) == 0 {
            return Ok(());
        }
        let mut breakers = self.state.breakers.lock();
        let Some(b) = breakers.get_mut(service) else {
            return Ok(());
        };
        match b.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open { until } if at >= until => {
                b.state = BreakerState::HalfOpen {
                    probes_left: self.policy.half_open_probes.max(1) - 1,
                };
                drop(breakers);
                self.breaker_transition(service, at, "open", "half_open");
                Ok(())
            }
            BreakerState::HalfOpen { probes_left } if probes_left > 0 => {
                b.state = BreakerState::HalfOpen {
                    probes_left: probes_left - 1,
                };
                Ok(())
            }
            _ => {
                drop(breakers);
                self.state.rejected.fetch_add(1, Ordering::Relaxed);
                self.bump(service, |s| &s.rejected);
                Err(EvalError::CircuitOpen {
                    service: service.to_string(),
                })
            }
        }
    }

    /// One successful call: close the breaker, reset the failure streak.
    /// A reset breaker is back at the default, so its record is dropped
    /// (keeping the `engaged == 0` fast path reachable again).
    fn on_success(&self, service: &ServiceRef, at: Instant) {
        if self.policy.breaker_threshold == 0 || self.state.engaged.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut breakers = self.state.breakers.lock();
        let removed = breakers.remove(service);
        if let Some(b) = removed {
            self.state.engaged.fetch_sub(1, Ordering::Relaxed);
            drop(breakers);
            // Only a breaker that had actually left Closed closes *now*;
            // dropping a record that merely tracked a failure streak is
            // not a state change.
            match b.state {
                BreakerState::Open { .. } => self.breaker_transition(service, at, "open", "closed"),
                BreakerState::HalfOpen { .. } => {
                    self.breaker_transition(service, at, "half_open", "closed")
                }
                BreakerState::Closed => {}
            }
        }
    }

    /// One failed attempt: extend the failure streak (also consulting the
    /// health tracker's view when attached) and open the breaker when the
    /// threshold is reached — immediately when half-open.
    fn on_failure(&self, service: &ServiceRef, at: Instant) {
        if self.policy.breaker_threshold == 0 {
            return;
        }
        let mut breakers = self.state.breakers.lock();
        let b = match breakers.entry(service.clone()) {
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                self.state.engaged.fetch_add(1, Ordering::Relaxed);
                v.insert(Breaker::default())
            }
        };
        b.consecutive_failures += 1;
        let health_view = self
            .health
            .and_then(|h| h.health_of(service))
            .map(|h| h.consecutive_errors)
            .unwrap_or(0);
        let streak = b.consecutive_failures.max(health_view);
        let half_open = matches!(b.state, BreakerState::HalfOpen { .. });
        if half_open || streak >= u64::from(self.policy.breaker_threshold) {
            b.state = BreakerState::Open {
                until: at + self.policy.breaker_cooldown,
            };
            b.consecutive_failures = 0;
            drop(breakers);
            self.state.breaker_opened.fetch_add(1, Ordering::Relaxed);
            self.bump(service, |s| &s.breaker_opened);
            self.breaker_transition(
                service,
                at,
                if half_open { "half_open" } else { "closed" },
                "open",
            );
        }
    }

    /// Deterministic jitter factor in `[0.5, 1.0)` for one (service,
    /// instant, attempt) triple — stable across runs, decorrelated across
    /// services and attempts.
    fn jitter(service: &ServiceRef, at: Instant, attempt: u32) -> f64 {
        let mut hasher = DefaultHasher::new();
        service.as_str().hash(&mut hasher);
        at.ticks().hash(&mut hasher);
        attempt.hash(&mut hasher);
        let unit = (hasher.finish() >> 11) as f64 / (1u64 << 53) as f64;
        0.5 + unit / 2.0
    }
}

/// An error worth retrying: the service exists and speaks the prototype,
/// it just failed (or timed out) this time.
fn is_transient(e: &EvalError) -> bool {
    matches!(
        e,
        EvalError::InvocationFailed { .. }
            | EvalError::DeadlineExceeded { .. }
            | EvalError::RemoteUnavailable { .. }
    )
}

impl<I: Invoker> Invoker for ResilientInvoker<'_, I> {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        if self.policy.is_disabled() {
            return self.inner.invoke(prototype, service_ref, input, at);
        }
        let mut span = self.tracer.and_then(|t| t.start("beta.call", at));
        if let Some(s) = span.as_mut() {
            s.attr_str("service", service_ref.as_str());
            if let Some(d) = self.policy.deadline {
                s.attr_u64("deadline_ms", d.as_millis() as u64);
            }
        }
        let _in_span = span.as_ref().map(|s| s.enter());
        if let Err(e) = self.admit(service_ref, at) {
            if let Some(s) = span.as_mut() {
                s.attr_u64("attempts", 0);
                s.attr_str("breaker", "rejected");
                s.attr_u64("ok", 0);
            }
            return Err(e);
        }
        let mut attempt: u32 = 0;
        let outcome = loop {
            attempt += 1;
            // the wall clock is only consulted when a deadline is armed
            let started = self.policy.deadline.map(|_| std::time::Instant::now());
            let mut result = self.inner.invoke(prototype, service_ref, input, at);
            if let (Some(deadline), Some(started)) = (self.policy.deadline, started) {
                if result.is_ok() && started.elapsed() > deadline {
                    // Soft deadline: the call completed but too late — its
                    // result is discarded. The instrumented layer below saw
                    // a success, so feed the failure to health directly
                    // (one extra attempt in its window).
                    self.state.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.bump(service_ref, |s| &s.timeouts);
                    let err = EvalError::DeadlineExceeded {
                        service: service_ref.to_string(),
                        prototype: prototype.name().to_string(),
                    };
                    if let Some(health) = self.health {
                        health.record(service_ref, at, Some(&err.to_string()));
                    }
                    result = Err(err);
                }
            }
            match result {
                Ok(rows) => {
                    self.on_success(service_ref, at);
                    break Ok(rows);
                }
                Err(e) => {
                    self.on_failure(service_ref, at);
                    if attempt > self.policy.max_retries || !is_transient(&e) {
                        break Err(e);
                    }
                    // A breaker opened by this streak stops the retry loop:
                    // the service is presumed gone, fail fast.
                    if matches!(
                        self.state.breaker_of(service_ref),
                        BreakerState::Open { .. }
                    ) {
                        break Err(e);
                    }
                    self.state.retries.fetch_add(1, Ordering::Relaxed);
                    self.bump(service_ref, |s| &s.retries);
                    let delay = self.policy.backoff_for(attempt);
                    if !delay.is_zero() {
                        let jittered = delay.mul_f64(Self::jitter(service_ref, at, attempt));
                        std::thread::sleep(jittered);
                    }
                }
            }
        };
        if let Some(s) = span.as_mut() {
            s.attr_u64("attempts", u64::from(attempt));
            s.attr_u64("retries", u64::from(attempt.saturating_sub(1)));
            s.attr_str("breaker", self.state.breaker_of(service_ref).to_string());
            s.attr_u64("ok", outcome.is_ok() as u64);
        }
        outcome
    }

    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
        self.inner.providers_of(prototype)
    }
}

/// The [`InvokerLayer`] form of [`ResilientInvoker`], for use with
/// [`InvokerStack`](serena_core::service::InvokerStack):
///
/// ```
/// use std::sync::Arc;
/// use serena_core::prelude::*;
/// use serena_services::resilience::{ResiliencePolicy, ResilienceState, ResilientLayer};
///
/// let base = serena_core::service::fixtures::example_registry();
/// let state = Arc::new(ResilienceState::new());
/// let stack = InvokerStack::new(base)
///     .layer(InstrumentedLayer::new())
///     .layer(ResilientLayer::new(ResiliencePolicy::standard(), state));
/// assert!(!stack.providers_of("getTemperature").is_empty());
/// ```
pub struct ResilientLayer<'a> {
    policy: ResiliencePolicy,
    state: Arc<ResilienceState>,
    health: Option<&'a HealthTracker>,
    registry: Option<&'a MetricsRegistry>,
    tracer: Option<&'a FlightRecorder>,
    trace: Option<&'a dyn TraceSink>,
}

impl<'a> ResilientLayer<'a> {
    /// A layer applying `policy`, sharing `state` across rebuilds.
    pub fn new(policy: ResiliencePolicy, state: Arc<ResilienceState>) -> Self {
        ResilientLayer {
            policy,
            state,
            health: None,
            registry: None,
            tracer: None,
            trace: None,
        }
    }

    /// See [`ResilientInvoker::with_health`].
    pub fn health(mut self, health: &'a HealthTracker) -> Self {
        self.health = Some(health);
        self
    }

    /// See [`ResilientInvoker::with_registry`].
    pub fn registry(mut self, registry: &'a MetricsRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// See [`ResilientInvoker::with_tracer`].
    pub fn tracer(mut self, tracer: &'a FlightRecorder) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// See [`ResilientInvoker::with_trace`].
    pub fn trace(mut self, trace: &'a dyn TraceSink) -> Self {
        self.trace = Some(trace);
        self
    }
}

impl<'a> InvokerLayer<'a> for ResilientLayer<'a> {
    fn wrap(self, inner: Box<dyn Invoker + 'a>) -> Box<dyn Invoker + 'a> {
        if self.policy.is_disabled() {
            // Nothing to do — keep the stack free of a dead layer.
            return inner;
        }
        let mut invoker = ResilientInvoker::with_state(inner, self.policy, self.state);
        if let Some(health) = self.health {
            invoker = invoker.with_health(health);
        }
        if let Some(registry) = self.registry {
            invoker = invoker.with_registry(registry);
        }
        if let Some(tracer) = self.tracer {
            invoker = invoker.with_tracer(tracer);
        }
        if let Some(trace) = self.trace {
            invoker = invoker.with_trace(trace);
        }
        Box::new(invoker)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPolicy, FaultyService};
    use crate::registry::DynamicRegistry;
    use serena_core::prototype::examples as protos;
    use serena_core::service::fixtures;

    fn flaky(policy: FaultPolicy) -> (DynamicRegistry, Arc<FaultyService>) {
        let faulty = FaultyService::new(fixtures::temperature_sensor(1), policy);
        let reg = DynamicRegistry::new();
        reg.register("flaky", faulty.clone());
        (reg, faulty)
    }

    fn call(invoker: &dyn Invoker, at: Instant) -> Result<Vec<Tuple>, EvalError> {
        invoker.invoke(
            &protos::get_temperature(),
            &ServiceRef::new("flaky"),
            &Tuple::empty(),
            at,
        )
    }

    #[test]
    fn disabled_policy_is_transparent() {
        let (reg, faulty) = flaky(FaultPolicy::EveryNth(2));
        let invoker = ResilientInvoker::new(&reg, ResiliencePolicy::disabled());
        assert!(call(&invoker, Instant(0)).is_err()); // call 0 fails
        assert!(call(&invoker, Instant(0)).is_ok());
        assert_eq!(faulty.attempts(), 2); // no retries happened
        assert_eq!(invoker.state().counters(), ResilienceCounters::default());
    }

    #[test]
    fn retries_recover_transient_faults() {
        // every cycle: 1 failure then 3 successes; one retry suffices
        let (reg, faulty) = flaky(FaultPolicy::Intermittent { fail: 1, ok: 3 });
        let invoker = ResilientInvoker::new(&reg, ResiliencePolicy::disabled().with_retries(2));
        for t in 0..8u64 {
            assert!(call(&invoker, Instant(t)).is_ok(), "t={t}");
        }
        let c = invoker.state().counters();
        assert_eq!(c.retries, 3); // faults at raw calls 0, 4 and 8
        assert_eq!(faulty.attempts(), 11); // 8 logical + 3 retries
    }

    #[test]
    fn retry_budget_exhausts_on_persistent_faults() {
        let (reg, faulty) = flaky(FaultPolicy::EveryNth(1)); // always fails
        let invoker = ResilientInvoker::new(&reg, ResiliencePolicy::disabled().with_retries(3));
        let err = call(&invoker, Instant(0)).unwrap_err();
        assert!(matches!(err, EvalError::InvocationFailed { .. }));
        assert_eq!(faulty.attempts(), 4); // 1 + 3 retries
        assert_eq!(invoker.state().counters().retries, 3);
    }

    #[test]
    fn non_transient_errors_are_not_retried() {
        let reg = DynamicRegistry::new();
        let invoker = ResilientInvoker::new(&reg, ResiliencePolicy::disabled().with_retries(5));
        // unknown service → not transient
        let err = call(&invoker, Instant(0)).unwrap_err();
        assert!(matches!(err, EvalError::UnknownService { .. }));
        assert_eq!(invoker.state().counters().retries, 0);
    }

    #[test]
    fn breaker_opens_then_half_opens_then_closes() {
        let (reg, faulty) = flaky(FaultPolicy::Intermittent { fail: 3, ok: 100 });
        let policy = ResiliencePolicy::disabled().with_breaker(3, 4);
        let state = Arc::new(ResilienceState::new());
        let invoker = ResilientInvoker::with_state(&reg, policy, state.clone());
        let sref = ServiceRef::new("flaky");

        // three consecutive failures trip the breaker at τ=2
        for t in 0..3u64 {
            assert!(call(&invoker, Instant(t)).is_err());
        }
        assert_eq!(
            state.breaker_of(&sref),
            BreakerState::Open { until: Instant(6) }
        );
        assert_eq!(state.counters().breaker_opened, 1);

        // during cooldown: rejected fast, the service is never touched
        let attempts_before = faulty.attempts();
        let err = call(&invoker, Instant(4)).unwrap_err();
        assert!(matches!(err, EvalError::CircuitOpen { .. }));
        assert_eq!(faulty.attempts(), attempts_before);
        assert_eq!(state.counters().rejected, 1);

        // cooldown over: the probe goes through (fault cycle is in its ok
        // phase now) and the breaker closes
        assert!(call(&invoker, Instant(6)).is_ok());
        assert_eq!(state.breaker_of(&sref), BreakerState::Closed);
    }

    #[test]
    fn breaker_edges_publish_transition_telemetry() {
        use serena_core::telemetry::MemoryTrace;
        let (reg, _faulty) = flaky(FaultPolicy::Intermittent { fail: 3, ok: 100 });
        let policy = ResiliencePolicy::disabled().with_breaker(3, 4);
        let state = Arc::new(ResilienceState::new());
        let registry = MetricsRegistry::new();
        let trace = MemoryTrace::new();
        let invoker = ResilientInvoker::with_state(&reg, policy, state.clone())
            .with_registry(&registry)
            .with_trace(&trace);

        // closed → open at τ=2, open → half-open → closed at τ=6
        for t in 0..3u64 {
            assert!(call(&invoker, Instant(t)).is_err());
        }
        assert!(call(&invoker, Instant(6)).is_ok());

        let count = |to: &str| {
            registry
                .counter(
                    "serena_breaker_transitions_total",
                    &[("service", "flaky"), ("to", to)],
                )
                .get()
        };
        assert_eq!(count("open"), 1);
        assert_eq!(count("half_open"), 1);
        assert_eq!(count("closed"), 1);

        let edges: Vec<(String, String, Instant)> = trace
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::BreakerTransition { from, to, at, .. } => {
                    Some((from.clone(), to.clone(), *at))
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            edges,
            vec![
                ("closed".into(), "open".into(), Instant(2)),
                ("open".into(), "half_open".into(), Instant(6)),
                ("half_open".into(), "closed".into(), Instant(6)),
            ]
        );
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let (reg, _faulty) = flaky(FaultPolicy::EveryNth(1)); // always fails
        let policy = ResiliencePolicy::disabled().with_breaker(2, 3);
        let state = Arc::new(ResilienceState::new());
        let invoker = ResilientInvoker::with_state(&reg, policy, state.clone());
        let sref = ServiceRef::new("flaky");

        assert!(call(&invoker, Instant(0)).is_err());
        assert!(call(&invoker, Instant(1)).is_err());
        assert_eq!(
            state.breaker_of(&sref),
            BreakerState::Open { until: Instant(4) }
        );
        // probe at τ=4 fails → immediately reopen until τ=7
        assert!(call(&invoker, Instant(4)).is_err());
        assert_eq!(
            state.breaker_of(&sref),
            BreakerState::Open { until: Instant(7) }
        );
        assert_eq!(state.counters().breaker_opened, 2);
    }

    #[test]
    fn deadline_converts_slow_success() {
        use crate::faults::SlowInvoker;
        let reg = fixtures::example_registry();
        let slow = SlowInvoker::new(reg, Duration::from_millis(10));
        let policy = ResiliencePolicy::disabled().with_deadline(Duration::from_millis(1));
        let health = HealthTracker::default();
        let invoker = ResilientInvoker::new(slow, policy).with_health(&health);
        let sref = ServiceRef::new("sensor01");
        let err = invoker
            .invoke(
                &protos::get_temperature(),
                &sref,
                &Tuple::empty(),
                Instant(0),
            )
            .unwrap_err();
        assert!(matches!(err, EvalError::DeadlineExceeded { .. }));
        assert_eq!(invoker.state().counters().timeouts, 1);
        // the conversion is visible to health
        let h = health.health_of(&sref).unwrap();
        assert_eq!(h.failures, 1);
    }

    #[test]
    fn registry_series_are_published() {
        let (reg, _faulty) = flaky(FaultPolicy::EveryNth(1));
        let registry = MetricsRegistry::new();
        let invoker = ResilientInvoker::new(&reg, ResiliencePolicy::disabled().with_retries(1))
            .with_registry(&registry);
        let _ = call(&invoker, Instant(0));
        assert_eq!(
            registry.counter_value("serena_resilience_retries_total", &[("service", "flaky")]),
            Some(1)
        );
    }

    #[test]
    fn resilience_state_round_trips_through_snapshot() {
        let (reg, _faulty) = flaky(FaultPolicy::EveryNth(1));
        let policy = ResiliencePolicy::disabled().with_breaker(2, 3);
        let state = Arc::new(ResilienceState::new());
        let invoker = ResilientInvoker::with_state(&reg, policy, state.clone());
        assert!(call(&invoker, Instant(0)).is_err());
        assert!(call(&invoker, Instant(1)).is_err()); // opens the breaker

        let mut w = Writer::new();
        state.export_state(&mut w);
        let bytes = w.into_bytes();

        let restored = Arc::new(ResilienceState::new());
        restored.import_state(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(restored.counters(), state.counters());
        assert_eq!(restored.breakers(), state.breakers());
        // the restored breaker still rejects during cooldown, without any
        // warm-up calls — the engaged fast path was rebuilt too
        let invoker = ResilientInvoker::with_state(&reg, policy, restored.clone());
        let err = call(&invoker, Instant(2)).unwrap_err();
        assert!(matches!(err, EvalError::CircuitOpen { .. }));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let s = ServiceRef::new("svc");
        let a = ResilientInvoker::<&DynamicRegistry>::jitter(&s, Instant(7), 2);
        let b = ResilientInvoker::<&DynamicRegistry>::jitter(&s, Instant(7), 2);
        assert_eq!(a, b);
        for at in 0..50u64 {
            for attempt in 1..4u32 {
                let j = ResilientInvoker::<&DynamicRegistry>::jitter(&s, Instant(at), attempt);
                assert!((0.5..1.0).contains(&j), "{j}");
            }
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = ResiliencePolicy::disabled()
            .with_backoff(Duration::from_millis(2), Duration::from_millis(5));
        assert_eq!(p.backoff_for(1), Duration::from_millis(2));
        assert_eq!(p.backoff_for(2), Duration::from_millis(4));
        assert_eq!(p.backoff_for(3), Duration::from_millis(5)); // capped
        assert_eq!(p.backoff_for(60), Duration::from_millis(5)); // no overflow
        assert_eq!(ResiliencePolicy::disabled().backoff_for(3), Duration::ZERO);
    }
}
