//! Failure injection for robustness testing.
//!
//! §5.2 closes with "further experiments need to be conducted to assess the
//! scalability and the robustness of our proposal" — this module provides
//! the fault models those robustness tests need: services that fail
//! intermittently, fail during scripted outages, or answer slowly
//! (reporting a simulated latency without blocking the test clock).

use std::sync::Arc;
use std::time::Duration;

use serena_core::sync::Mutex;

use serena_core::error::EvalError;
use serena_core::prototype::Prototype;
use serena_core::service::{Invoker, InvokerLayer, Service};
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::ServiceRef;

/// When a wrapped service misbehaves.
#[derive(Debug, Clone)]
pub enum FaultPolicy {
    /// Every `n`-th invocation fails (1-based; `n = 1` fails always).
    EveryNth(u64),
    /// Fails during the inclusive instant range.
    Outage {
        /// First failing instant.
        from: Instant,
        /// Last failing instant.
        to: Instant,
    },
    /// A repeating duty cycle: `fail` consecutive failing calls, then `ok`
    /// consecutive successful calls. Long-run failure rate is
    /// `fail / (fail + ok)` — the predictable signal health trackers are
    /// tested against.
    ///
    /// Zero-length phases degenerate cleanly: `fail = 0` never fails
    /// (whatever `ok` is, including 0), and `ok = 0` with `fail > 0` always
    /// fails.
    Intermittent {
        /// Failing calls at the start of each cycle.
        fail: u64,
        /// Successful calls completing each cycle.
        ok: u64,
    },
    /// Never fails (control case).
    None,
}

/// A decorator injecting faults into any [`Service`].
pub struct FaultyService {
    inner: Arc<dyn Service>,
    policy: FaultPolicy,
    calls: Mutex<u64>,
    error: String,
}

impl FaultyService {
    /// Wrap `inner` with `policy`.
    pub fn new(inner: Arc<dyn Service>, policy: FaultPolicy) -> Arc<Self> {
        Arc::new(FaultyService {
            inner,
            policy,
            calls: Mutex::new(0),
            error: "injected fault: device unreachable".to_string(),
        })
    }

    /// Wrap with a custom error message.
    pub fn with_error(
        inner: Arc<dyn Service>,
        policy: FaultPolicy,
        error: impl Into<String>,
    ) -> Arc<Self> {
        Arc::new(FaultyService {
            inner,
            policy,
            calls: Mutex::new(0),
            error: error.into(),
        })
    }

    /// Total invocation attempts observed (including failed ones).
    pub fn attempts(&self) -> u64 {
        *self.calls.lock()
    }

    /// Whether the call with 0-based index `call` at instant `at` fails.
    fn should_fail(&self, call: u64, at: Instant) -> bool {
        match &self.policy {
            FaultPolicy::EveryNth(n) => *n > 0 && call.is_multiple_of(*n),
            FaultPolicy::Outage { from, to } => *from <= at && at <= *to,
            FaultPolicy::Intermittent { fail, ok } => {
                // saturating: a cycle longer than u64::MAX never wraps back
                // into the failing phase within one counter lifetime.
                let period = fail.saturating_add(*ok);
                period > 0 && call % period < *fail
            }
            FaultPolicy::None => false,
        }
    }
}

impl Service for FaultyService {
    fn prototypes(&self) -> Vec<Arc<Prototype>> {
        self.inner.prototypes()
    }

    fn invoke(
        &self,
        prototype: &Prototype,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, String> {
        // Claim this call's index and bump the counter under one lock, so
        // concurrent invocations (parallel β) each see a distinct position
        // in the duty cycle.
        let call = {
            let mut calls = self.calls.lock();
            let i = *calls;
            *calls += 1;
            i
        };
        let fail = self.should_fail(call, at);
        if fail {
            return Err(self.error.clone());
        }
        self.inner.invoke(prototype, input, at)
    }
}

/// An [`Invoker`] decorator that sleeps a fixed wall-clock latency before
/// every invocation — the "slow device" model the parallel-β benchmarks are
/// built on. Because the sleep happens on the calling thread, N tuples
/// fanned across W workers take roughly `ceil(N / W) × latency` instead of
/// `N × latency`.
pub struct SlowInvoker<I> {
    inner: I,
    latency: Duration,
}

impl<I: Invoker> SlowInvoker<I> {
    /// Wrap `inner`, delaying every [`Invoker::invoke`] by `latency`.
    pub fn new(inner: I, latency: Duration) -> Self {
        SlowInvoker { inner, latency }
    }

    /// The simulated per-call latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// The wrapped invoker.
    pub fn inner(&self) -> &I {
        &self.inner
    }
}

impl<'a> SlowInvoker<Box<dyn Invoker + 'a>> {
    /// The [`InvokerLayer`] form, for use with
    /// [`InvokerStack`](serena_core::service::InvokerStack):
    /// `InvokerStack::new(base).layer(SlowInvoker::layer(latency))`.
    pub fn layer(latency: Duration) -> impl InvokerLayer<'a> {
        move |inner: Box<dyn Invoker + 'a>| -> Box<dyn Invoker + 'a> {
            Box::new(SlowInvoker::new(inner, latency))
        }
    }
}

impl<I: Invoker> Invoker for SlowInvoker<I> {
    fn invoke(
        &self,
        prototype: &Prototype,
        service_ref: &ServiceRef,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, EvalError> {
        std::thread::sleep(self.latency);
        self.inner.invoke(prototype, service_ref, input, at)
    }

    fn providers_of(&self, prototype: &str) -> Vec<ServiceRef> {
        self.inner.providers_of(prototype)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serena_core::prototype::examples as protos;
    use serena_core::service::fixtures;

    #[test]
    fn every_nth_fails_periodically() {
        // n=2 → calls 0, 2, 4… fail
        let svc = FaultyService::new(fixtures::temperature_sensor(1), FaultPolicy::EveryNth(2));
        let mut outcomes = Vec::new();
        for _ in 0..6 {
            outcomes.push(
                svc.invoke(&protos::get_temperature(), &Tuple::empty(), Instant(0))
                    .is_ok(),
            );
        }
        assert_eq!(outcomes, vec![false, true, false, true, false, true]);
        assert_eq!(svc.attempts(), 6);
    }

    #[test]
    fn outage_window() {
        let svc = FaultyService::new(
            fixtures::temperature_sensor(1),
            FaultPolicy::Outage {
                from: Instant(5),
                to: Instant(7),
            },
        );
        assert!(svc
            .invoke(&protos::get_temperature(), &Tuple::empty(), Instant(4))
            .is_ok());
        for t in 5..=7 {
            assert!(svc
                .invoke(&protos::get_temperature(), &Tuple::empty(), Instant(t))
                .is_err());
        }
        assert!(svc
            .invoke(&protos::get_temperature(), &Tuple::empty(), Instant(8))
            .is_ok());
    }

    #[test]
    fn intermittent_duty_cycle() {
        // 2 failures then 2 successes, repeating
        let svc = FaultyService::new(
            fixtures::temperature_sensor(1),
            FaultPolicy::Intermittent { fail: 2, ok: 2 },
        );
        let outcomes: Vec<bool> = (0..8)
            .map(|_| {
                svc.invoke(&protos::get_temperature(), &Tuple::empty(), Instant(0))
                    .is_ok()
            })
            .collect();
        assert_eq!(
            outcomes,
            vec![false, false, true, true, false, false, true, true]
        );
        assert_eq!(svc.attempts(), 8);
    }

    fn outcomes_of(policy: FaultPolicy, calls: usize) -> Vec<bool> {
        let svc = FaultyService::new(fixtures::temperature_sensor(1), policy);
        (0..calls)
            .map(|_| {
                svc.invoke(&protos::get_temperature(), &Tuple::empty(), Instant(0))
                    .is_ok()
            })
            .collect()
    }

    #[test]
    fn intermittent_zero_fail_phase_never_fails() {
        let outcomes = outcomes_of(FaultPolicy::Intermittent { fail: 0, ok: 3 }, 7);
        assert!(outcomes.iter().all(|ok| *ok));
    }

    #[test]
    fn intermittent_zero_ok_phase_always_fails() {
        let outcomes = outcomes_of(FaultPolicy::Intermittent { fail: 3, ok: 0 }, 7);
        assert!(outcomes.iter().all(|ok| !*ok));
    }

    #[test]
    fn intermittent_both_phases_zero_never_fails() {
        let outcomes = outcomes_of(FaultPolicy::Intermittent { fail: 0, ok: 0 }, 5);
        assert!(outcomes.iter().all(|ok| *ok));
    }

    #[test]
    fn intermittent_phase_boundaries_are_exact() {
        // fail=1, ok=2: exactly call 0 of every 3-call cycle fails.
        let outcomes = outcomes_of(FaultPolicy::Intermittent { fail: 1, ok: 2 }, 9);
        assert_eq!(
            outcomes,
            vec![false, true, true, false, true, true, false, true, true]
        );
        // fail=3, ok=1: only the last call of every 4-call cycle succeeds.
        let outcomes = outcomes_of(FaultPolicy::Intermittent { fail: 3, ok: 1 }, 8);
        assert_eq!(
            outcomes,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn intermittent_huge_phases_do_not_overflow() {
        // fail + ok would overflow u64; the first calls sit in the failing
        // phase and must not panic.
        let outcomes = outcomes_of(
            FaultPolicy::Intermittent {
                fail: u64::MAX,
                ok: 2,
            },
            3,
        );
        assert!(outcomes.iter().all(|ok| !*ok));
    }

    #[test]
    fn slow_invoker_as_layer_composes() {
        use serena_core::service::InvokerStack;
        let reg = fixtures::example_registry();
        let stack = InvokerStack::new(reg).layer(SlowInvoker::layer(Duration::from_millis(1)));
        let out = stack
            .invoke(
                &protos::get_temperature(),
                &ServiceRef::new("sensor01"),
                &Tuple::empty(),
                Instant(0),
            )
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn none_policy_is_transparent() {
        let svc = FaultyService::new(fixtures::temperature_sensor(1), FaultPolicy::None);
        for t in 0..5 {
            assert!(svc
                .invoke(&protos::get_temperature(), &Tuple::empty(), Instant(t))
                .is_ok());
        }
        assert_eq!(svc.prototypes().len(), 1);
    }

    #[test]
    fn slow_invoker_delays_then_delegates() {
        let reg = fixtures::example_registry();
        let slow = SlowInvoker::new(reg, Duration::from_millis(5));
        assert_eq!(slow.latency(), Duration::from_millis(5));
        let sref = ServiceRef::new("sensor01");
        let started = std::time::Instant::now();
        let out = slow
            .invoke(
                &protos::get_temperature(),
                &sref,
                &Tuple::empty(),
                Instant(0),
            )
            .unwrap();
        assert!(started.elapsed() >= Duration::from_millis(5));
        assert_eq!(out.len(), 1);
        // provider listing is undelayed delegation
        assert!(!slow.providers_of("getTemperature").is_empty());
    }

    #[test]
    fn custom_error_propagates() {
        let svc = FaultyService::with_error(
            fixtures::temperature_sensor(1),
            FaultPolicy::EveryNth(1),
            "battery dead",
        );
        let err = svc
            .invoke(&protos::get_temperature(), &Tuple::empty(), Instant(0))
            .unwrap_err();
        assert_eq!(err, "battery dead");
    }
}
