//! Node endpoints: serving a directory to peers and proxying remote
//! services locally.
//!
//! * [`ServiceNode::serve`] exposes a [`NodeDirectory`] on a
//!   [`Transport`] listener — thread-per-connection, one blocking
//!   request/reply exchange at a time per connection;
//! * [`RemoteNodeClient`] is the dialing side: a small connection pool,
//!   a hello handshake that learns the peer's node id, and typed
//!   request helpers;
//! * [`RemoteService`] is the local proxy for one advertised remote
//!   service. It implements [`Service`], so it registers into the local
//!   directory like any device — β calls to it traverse the *entire*
//!   existing `InvokerStack` (deadlines, retries, circuit breakers,
//!   dedup, telemetry) before crossing the wire, which is how PR 4's
//!   resilience policies come to govern real network latency.
//!
//! Server-side invocation errors are relayed *structurally*
//! ([`InvokeFault::Relayed`]): a `Panicked` on the hosting node is a
//! `Panicked` for the caller, byte-identical to a local panic. Only a
//! transport-level failure (dead node, garbage frames) becomes
//! [`EvalError::RemoteUnavailable`] — and that, in turn, is transient
//! for the resilience layer, so retries and breakers treat a flaky link
//! like a flaky device.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use serena_core::sync::Mutex;

use serena_core::error::EvalError;
use serena_core::prototype::Prototype;
use serena_core::service::{invoke_contained, InvokeFault, Invoker, Service};
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::ServiceRef;

use crate::directory::{DirectoryEvent, NodeDirectory, ServiceDirectory};
use crate::transport::{Connection, Frame, ServiceAd, Transport, TransportError, WireEvent};

struct ClientCore {
    transport: Arc<dyn Transport>,
    addr: String,
    local_node: String,
    node: String,
    pool: Mutex<Vec<Box<dyn Connection>>>,
}

/// A pooled, handshaking client for one remote node. Cheap to clone
/// (shared pool); every clone talks to the same endpoint.
#[derive(Clone)]
pub struct RemoteNodeClient {
    core: Arc<ClientCore>,
}

impl RemoteNodeClient {
    /// Dial `addr`, introduce ourselves as `local_node`, and learn the
    /// peer's node id from its welcome.
    pub fn connect(
        transport: Arc<dyn Transport>,
        addr: &str,
        local_node: &str,
    ) -> Result<Self, TransportError> {
        let (conn, node) = dial(&*transport, addr, local_node)?;
        Ok(RemoteNodeClient {
            core: Arc::new(ClientCore {
                transport,
                addr: addr.to_string(),
                local_node: local_node.to_string(),
                node,
                pool: Mutex::new(vec![conn]),
            }),
        })
    }

    /// A handle to the same client (shared connection pool).
    pub fn share(&self) -> RemoteNodeClient {
        self.clone()
    }

    /// The remote node's id (learned during the handshake).
    pub fn node(&self) -> &str {
        &self.core.node
    }

    /// The remote node's address.
    pub fn addr(&self) -> &str {
        &self.core.addr
    }

    fn call(&self, frame: &Frame) -> Result<Frame, TransportError> {
        // try a pooled connection first; it may be stale (peer restarted),
        // in which case fall through to one fresh dial
        let pooled = self.core.pool.lock().pop();
        if let Some(mut conn) = pooled {
            if let Ok(reply) = exchange(&mut conn, frame) {
                self.core.pool.lock().push(conn);
                return Ok(reply);
            }
        }
        let (mut conn, _) = dial(
            &*self.core.transport,
            &self.core.addr,
            &self.core.local_node,
        )?;
        let reply = exchange(&mut conn, frame)?;
        self.core.pool.lock().push(conn);
        Ok(reply)
    }

    /// Full service listing with the matching event-log position.
    pub fn list_services(&self) -> Result<(u64, Vec<ServiceAd>), TransportError> {
        match self.call(&Frame::ListServices)? {
            Frame::ServiceList { seq, services } => Ok((seq, services)),
            other => Err(unexpected("ServiceList", &other)),
        }
    }

    /// Re-sync after a failure: a fresh full listing (callers replace
    /// everything they imported and adopt the returned cursor).
    pub fn resync(&self) -> Result<(u64, Vec<ServiceAd>), TransportError> {
        self.list_services()
    }

    /// Directory events after log position `after`. A successful
    /// round-trip doubles as the liveness heartbeat.
    pub fn poll_events(&self, after: u64) -> Result<(u64, Vec<WireEvent>), TransportError> {
        match self.call(&Frame::PollEvents { after })? {
            Frame::Events { next, events } => Ok((next, events)),
            other => Err(unexpected("Events", &other)),
        }
    }

    /// Relay one β invocation. The outer `Result` is transport success;
    /// the inner one is the remote registry's verdict, relayed
    /// structurally.
    pub fn invoke(
        &self,
        service: &ServiceRef,
        prototype: &str,
        input: &Tuple,
        at: Instant,
    ) -> Result<Result<Vec<Tuple>, EvalError>, TransportError> {
        let frame = Frame::Invoke {
            service: service.clone(),
            prototype: prototype.to_string(),
            input: input.clone(),
            at: at.0,
        };
        match self.call(&frame)? {
            Frame::InvokeOk { tuples } => Ok(Ok(tuples)),
            Frame::InvokeErr { error } => Ok(Err(error)),
            other => Err(unexpected("InvokeOk/InvokeErr", &other)),
        }
    }

    /// Liveness probe; returns the peer's current service count.
    pub fn heartbeat(&self, at: Instant) -> Result<u64, TransportError> {
        match self.call(&Frame::Heartbeat { at: at.0 })? {
            Frame::HeartbeatAck { services, .. } => Ok(services),
            other => Err(unexpected("HeartbeatAck", &other)),
        }
    }

    /// Push a checkpoint to a standby peer and wait for its ack.
    pub fn send_checkpoint(&self, tick: u64, bytes: &[u8]) -> Result<(), TransportError> {
        let frame = Frame::Checkpoint {
            tick,
            bytes: bytes.to_vec(),
        };
        match self.call(&frame)? {
            Frame::CheckpointAck { tick: acked } if acked == tick => Ok(()),
            other => Err(unexpected("CheckpointAck", &other)),
        }
    }
}

fn dial(
    transport: &dyn Transport,
    addr: &str,
    local_node: &str,
) -> Result<(Box<dyn Connection>, String), TransportError> {
    let mut conn = transport.connect(addr)?;
    conn.send(&Frame::Hello {
        node: local_node.to_string(),
    })?;
    match conn.recv()? {
        Frame::Welcome { node } => Ok((conn, node)),
        other => Err(unexpected("Welcome", &other)),
    }
}

fn exchange(conn: &mut Box<dyn Connection>, frame: &Frame) -> Result<Frame, TransportError> {
    conn.send(frame)?;
    conn.recv()
}

fn unexpected(wanted: &str, got: &Frame) -> TransportError {
    // keep the variant name only — payloads may be large (checkpoints)
    let tag = match got {
        Frame::Hello { .. } => "Hello",
        Frame::Welcome { .. } => "Welcome",
        Frame::ListServices => "ListServices",
        Frame::ServiceList { .. } => "ServiceList",
        Frame::PollEvents { .. } => "PollEvents",
        Frame::Events { .. } => "Events",
        Frame::Invoke { .. } => "Invoke",
        Frame::InvokeOk { .. } => "InvokeOk",
        Frame::InvokeErr { .. } => "InvokeErr",
        Frame::Heartbeat { .. } => "Heartbeat",
        Frame::HeartbeatAck { .. } => "HeartbeatAck",
        Frame::Checkpoint { .. } => "Checkpoint",
        Frame::CheckpointAck { .. } => "CheckpointAck",
        Frame::Bye => "Bye",
    };
    TransportError::Protocol(format!("expected {wanted}, got {tag}"))
}

/// The local proxy for one service advertised by a remote node.
pub struct RemoteService {
    client: RemoteNodeClient,
    reference: ServiceRef,
    prototypes: Vec<Arc<Prototype>>,
}

impl RemoteService {
    /// A proxy invoking `reference` through `client`, implementing the
    /// advertised `prototypes` (full schemas, so β results are validated
    /// locally exactly like a local service's).
    pub fn new(
        client: RemoteNodeClient,
        reference: ServiceRef,
        prototypes: Vec<Arc<Prototype>>,
    ) -> Self {
        RemoteService {
            client,
            reference,
            prototypes,
        }
    }

    /// The node hosting the real service.
    pub fn node(&self) -> &str {
        self.client.node()
    }
}

impl Service for RemoteService {
    fn prototypes(&self) -> Vec<Arc<Prototype>> {
        self.prototypes.clone()
    }

    fn invoke(
        &self,
        prototype: &Prototype,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, String> {
        // degraded string channel for callers that bypass the classified
        // path; registries use invoke_classified below
        self.invoke_classified(prototype, input, at)
            .map_err(|fault| match fault {
                InvokeFault::Application(reason) => reason,
                InvokeFault::Relayed(e) => e.to_string(),
                InvokeFault::Transport { node, reason } => {
                    format!("remote node `{node}` unreachable: {reason}")
                }
            })
    }

    fn invoke_classified(
        &self,
        prototype: &Prototype,
        input: &Tuple,
        at: Instant,
    ) -> Result<Vec<Tuple>, InvokeFault> {
        match self
            .client
            .invoke(&self.reference, prototype.name(), input, at)
        {
            Ok(Ok(tuples)) => Ok(tuples),
            Ok(Err(error)) => Err(InvokeFault::Relayed(error)),
            Err(te) => Err(InvokeFault::Transport {
                node: self.client.node().to_string(),
                reason: te.to_string(),
            }),
        }
    }
}

struct NodeState {
    running: AtomicBool,
    last_checkpoint: Mutex<Option<(u64, Vec<u8>)>>,
    directory: Arc<NodeDirectory>,
}

/// A running node endpoint (see [`ServiceNode::serve`]). Dropping the
/// handle shuts the endpoint down.
pub struct NodeHandle {
    addr: String,
    transport: Arc<dyn Transport>,
    state: Arc<NodeState>,
    accept_thread: Option<JoinHandle<()>>,
}

impl NodeHandle {
    /// The canonical (re-connectable) listen address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The most recent checkpoint replicated to this node, if any —
    /// `(tick, snapshot bytes)`. A standby resumes a dead primary's
    /// queries by `restore_bytes`-ing these.
    pub fn last_checkpoint(&self) -> Option<(u64, Vec<u8>)> {
        self.state.last_checkpoint.lock().clone()
    }

    /// Stop accepting connections and join the accept thread. Handler
    /// threads for still-open connections exit when their peer closes.
    pub fn shutdown(&mut self) {
        if !self.state.running.swap(false, Ordering::SeqCst) {
            return;
        }
        // unblock the accept loop with a throwaway connection
        if let Ok(mut conn) = self.transport.connect(&self.addr) {
            let _ = conn.send(&Frame::Bye);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Namespace for [`ServiceNode::serve`].
pub struct ServiceNode;

impl ServiceNode {
    /// Expose `directory` at `addr` on `transport`: peers can list and
    /// poll its locally hosted services, relay β invocations to them,
    /// and push standby checkpoints. Returns immediately; the endpoint
    /// runs on background threads until the handle is dropped.
    pub fn serve(
        transport: Arc<dyn Transport>,
        addr: &str,
        directory: Arc<NodeDirectory>,
    ) -> Result<NodeHandle, TransportError> {
        let listener = transport.listen(addr)?;
        let addr = listener.local_addr();
        let state = Arc::new(NodeState {
            running: AtomicBool::new(true),
            last_checkpoint: Mutex::new(None),
            directory,
        });
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::spawn(move || loop {
            match listener.accept() {
                Ok(conn) => {
                    if !accept_state.running.load(Ordering::SeqCst) {
                        break;
                    }
                    let conn_state = Arc::clone(&accept_state);
                    std::thread::spawn(move || serve_connection(conn, &conn_state));
                }
                Err(_) => {
                    if !accept_state.running.load(Ordering::SeqCst) {
                        break;
                    }
                    // transient accept failure; keep serving
                }
            }
        });
        Ok(NodeHandle {
            addr,
            transport,
            state,
            accept_thread: Some(accept_thread),
        })
    }
}

fn serve_connection(mut conn: Box<dyn Connection>, state: &NodeState) {
    while state.running.load(Ordering::SeqCst) {
        let request = match conn.recv() {
            Ok(frame) => frame,
            // any failure — clean close, truncation, garbage — ends this
            // connection; the client re-dials
            Err(_) => return,
        };
        // re-check after the (blocking) recv: a frame that raced a
        // shutdown must not be serviced by a dead endpoint
        if !state.running.load(Ordering::SeqCst) {
            return;
        }
        let directory = &state.directory;
        let reply = match request {
            Frame::Hello { .. } => Frame::Welcome {
                node: ServiceDirectory::node(&**directory).to_string(),
            },
            Frame::ListServices => {
                let (seq, services) = directory.advertise_all();
                Frame::ServiceList { seq, services }
            }
            Frame::PollEvents { after } => {
                let (next, events) = directory.events_since(after);
                let events = events
                    .into_iter()
                    .filter_map(|event| match event {
                        // resolve the full ad at send time; a service
                        // joined-then-left inside the window is skipped
                        // (its Left still crosses, and deregistering an
                        // unknown reference is a no-op for the peer)
                        DirectoryEvent::Joined { reference, .. } => {
                            directory.advertise(&reference).map(WireEvent::Joined)
                        }
                        DirectoryEvent::Left { reference } => Some(WireEvent::Left(reference)),
                    })
                    .collect();
                Frame::Events { next, events }
            }
            Frame::Invoke {
                service,
                prototype,
                input,
                at,
            } => match handle_invoke(directory, &service, &prototype, &input, Instant(at)) {
                Ok(tuples) => Frame::InvokeOk { tuples },
                Err(error) => Frame::InvokeErr { error },
            },
            Frame::Heartbeat { at } => Frame::HeartbeatAck {
                at,
                services: ServiceDirectory::len(&**directory) as u64,
            },
            Frame::Checkpoint { tick, bytes } => {
                *state.last_checkpoint.lock() = Some((tick, bytes));
                Frame::CheckpointAck { tick }
            }
            Frame::Bye => return,
            // a response frame where a request belongs: protocol
            // violation, close the connection
            _ => return,
        };
        if conn.send(&reply).is_err() {
            return;
        }
    }
}

fn handle_invoke(
    directory: &Arc<NodeDirectory>,
    service: &ServiceRef,
    prototype: &str,
    input: &Tuple,
    at: Instant,
) -> Result<Vec<Tuple>, EvalError> {
    // never relay an invocation for a service this node merely proxies:
    // with symmetric (or self-) links the two endpoints would bounce the
    // call between each other forever
    if directory.hosted_by(service).is_some() {
        return Err(EvalError::UnknownService {
            reference: service.to_string(),
        });
    }
    // resolve the full prototype from the local registration — schemas
    // never cross the wire for invocations, only names
    let resolved = ServiceDirectory::resolve(&**directory, service).ok_or_else(|| {
        EvalError::UnknownService {
            reference: service.to_string(),
        }
    })?;
    let proto = resolved
        .prototypes()
        .into_iter()
        .find(|p| p.name() == prototype)
        .ok_or_else(|| EvalError::PrototypeNotImplemented {
            service: service.to_string(),
            prototype: prototype.to_string(),
        })?;
    // contain panics here so a panicking device on this node relays as
    // `Panicked` — byte-identical to what a local caller's
    // CatchPanicLayer would produce
    invoke_contained(&**directory as &dyn Invoker, &proto, service, input, at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcTransport;
    use serena_core::service::fixtures;
    use serena_core::value::Value;

    fn served_directory() -> (Arc<dyn Transport>, NodeHandle, Arc<NodeDirectory>) {
        let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new());
        let dir = Arc::new(NodeDirectory::new("host"));
        ServiceDirectory::register(
            &*dir,
            ServiceRef::new("sensor01"),
            fixtures::temperature_sensor(1),
        );
        dir.set("sensor01", "location", Value::str("office"));
        let handle =
            ServiceNode::serve(Arc::clone(&transport), "inproc:host", Arc::clone(&dir)).unwrap();
        (transport, handle, dir)
    }

    #[test]
    fn handshake_listing_and_remote_invocation() {
        let (transport, _handle, _dir) = served_directory();
        let client = RemoteNodeClient::connect(transport, "inproc:host", "client").unwrap();
        assert_eq!(client.node(), "host");

        let (_seq, services) = client.list_services().unwrap();
        assert_eq!(services.len(), 1);
        assert_eq!(services[0].reference.as_str(), "sensor01");
        assert_eq!(
            services[0].metadata,
            vec![("location".to_string(), Value::str("office"))]
        );

        let proto = &services[0].prototypes[0];
        let out = client
            .invoke(
                &ServiceRef::new("sensor01"),
                proto.name(),
                &Tuple::empty(),
                Instant(3),
            )
            .unwrap()
            .unwrap();
        assert_eq!(out.len(), 1);

        // unknown service relays the structural error
        let err = client
            .invoke(
                &ServiceRef::new("ghost"),
                proto.name(),
                &Tuple::empty(),
                Instant(3),
            )
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, EvalError::UnknownService { .. }));

        assert_eq!(client.heartbeat(Instant(4)).unwrap(), 1);
    }

    #[test]
    fn server_side_panic_relays_as_panicked() {
        let (transport, _handle, dir) = served_directory();
        ServiceDirectory::register(&*dir, ServiceRef::new("bad"), fixtures::panicking_sensor());
        let client = RemoteNodeClient::connect(transport, "inproc:host", "client").unwrap();
        let err = client
            .invoke(
                &ServiceRef::new("bad"),
                "getTemperature",
                &Tuple::empty(),
                Instant(1),
            )
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, EvalError::Panicked { .. }), "{err:?}");
    }

    #[test]
    fn event_polling_sees_join_and_leave() {
        let (transport, _handle, dir) = served_directory();
        let client = RemoteNodeClient::connect(transport, "inproc:host", "client").unwrap();
        let (seq, _) = client.list_services().unwrap();

        ServiceDirectory::register(
            &*dir,
            ServiceRef::new("sensor02"),
            fixtures::temperature_sensor(2),
        );
        ServiceDirectory::deregister(&*dir, &ServiceRef::new("sensor01"));

        let (next, events) = client.poll_events(seq).unwrap();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            WireEvent::Joined(ad) if ad.reference.as_str() == "sensor02"
        ));
        assert!(matches!(
            &events[1],
            WireEvent::Left(r) if r.as_str() == "sensor01"
        ));
        let (next2, events) = client.poll_events(next).unwrap();
        assert_eq!(next2, next);
        assert!(events.is_empty());
    }

    #[test]
    fn checkpoints_replicate_to_the_handle() {
        let (transport, handle, _dir) = served_directory();
        let client = RemoteNodeClient::connect(transport, "inproc:host", "client").unwrap();
        assert!(handle.last_checkpoint().is_none());
        client.send_checkpoint(7, &[1, 2, 3]).unwrap();
        assert_eq!(handle.last_checkpoint(), Some((7, vec![1, 2, 3])));
        client.send_checkpoint(8, &[4]).unwrap();
        assert_eq!(handle.last_checkpoint(), Some((8, vec![4])));
    }

    #[test]
    fn shutdown_closes_the_endpoint() {
        let (transport, mut handle, _dir) = served_directory();
        let addr = handle.addr().to_string();
        handle.shutdown();
        // after shutdown new connections cannot complete the handshake
        assert!(RemoteNodeClient::connect(transport, &addr, "late").is_err());
    }
}
