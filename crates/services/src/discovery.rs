//! Service-discovery queries: from directory state to X-Relation rows.
//!
//! §5.1: "The Query Processor also handles service discovery queries: it
//! continuously updates some specific XD-Relations so that they represent
//! the set of services (implementing some given prototypes) that are
//! available" — like the `cameras` X-Relation of the surveillance scenario,
//! or the sensor table of §1.2 whose rows appear and disappear with the
//! devices.
//!
//! A [`DiscoveryQuery`] materializes one such relation: one row per
//! currently-registered provider of a prototype, the service-reference
//! attribute holding the provider's reference and the remaining real
//! attributes filled from the directory's per-service metadata (e.g. a
//! sensor's installed location). [`DiscoveryQuery::refresh_in`] reads
//! both provider set and metadata from one
//! [`ServiceDirectory`](crate::directory::ServiceDirectory) — local and
//! remote (proxied) services are indistinguishable here, which is what
//! makes discovery transport-agnostic.

use std::collections::{BTreeMap, HashMap};

use serena_core::sync::RwLock;

use serena_core::attr::AttrName;
use serena_core::error::SchemaError;
use serena_core::schema::SchemaRef;
use serena_core::service::Invoker;
use serena_core::tuple::Tuple;
use serena_core::value::{ServiceRef, Value};
use serena_core::xrelation::XRelation;

/// Per-service metadata: the static facts about a device that the network
/// announcement carries alongside the reference (location, coverage, …).
///
/// Kept for the legacy split-surface API; the unified
/// [`ServiceDirectory`](crate::directory::ServiceDirectory) trait
/// carries metadata itself
/// (`set_metadata`/`metadata`/`metadata_of`), so new code never touches
/// this type directly.
#[derive(Default)]
pub struct MetadataStore {
    metadata: RwLock<HashMap<ServiceRef, BTreeMap<String, Value>>>,
}

impl MetadataStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set one metadata field for a service.
    pub fn set(&self, reference: impl Into<ServiceRef>, key: impl Into<String>, value: Value) {
        self.metadata
            .write()
            .entry(reference.into())
            .or_default()
            .insert(key.into(), value);
    }

    /// Get one metadata field.
    pub fn get(&self, reference: &ServiceRef, key: &str) -> Option<Value> {
        self.metadata.read().get(reference)?.get(key).cloned()
    }

    /// Forget everything about a service.
    pub fn remove(&self, reference: &ServiceRef) {
        self.metadata.write().remove(reference);
    }
}

/// A continuously-refreshable discovery relation.
pub struct DiscoveryQuery {
    prototype: String,
    schema: SchemaRef,
    service_attr: AttrName,
}

impl DiscoveryQuery {
    /// Discovery of providers of `prototype` into `schema`, whose
    /// `service_attr` (a real attribute) receives the reference.
    pub fn new(
        prototype: impl Into<String>,
        schema: SchemaRef,
        service_attr: impl Into<AttrName>,
    ) -> Result<Self, SchemaError> {
        let service_attr = service_attr.into();
        if !schema.is_real(service_attr.as_str()) {
            return Err(SchemaError::ServiceAttrNotReal {
                prototype: "discovery".into(),
                attr: service_attr,
            });
        }
        Ok(DiscoveryQuery {
            prototype: prototype.into(),
            schema,
            service_attr,
        })
    }

    /// The target schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Materialize the current provider set from one unified directory
    /// (provider resolution *and* metadata). Services lacking metadata
    /// for some required real attribute are skipped (discovered but not
    /// yet describable — the refresh after their metadata arrives picks
    /// them up).
    pub fn refresh_in(&self, directory: &dyn crate::directory::ServiceDirectory) -> XRelation {
        self.materialize(directory, &|reference, key| {
            directory.metadata(reference, key)
        })
    }

    fn materialize(
        &self,
        providers: &dyn Invoker,
        metadata: &dyn Fn(&ServiceRef, &str) -> Option<Value>,
    ) -> XRelation {
        let mut rel = XRelation::empty(self.schema.clone());
        'providers: for reference in providers.providers_of(&self.prototype) {
            let mut values = Vec::with_capacity(self.schema.real_arity());
            for attr in self.schema.attrs().iter().filter(|a| a.is_real()) {
                if attr.name == self.service_attr {
                    values.push(Value::Service(reference.clone()));
                } else {
                    match metadata(&reference, attr.name.as_str()) {
                        Some(v) => values.push(v),
                        None => continue 'providers,
                    }
                }
            }
            rel.insert(Tuple::new(values));
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::NodeDirectory;
    use serena_core::schema::examples::sensors_schema;
    use serena_core::service::fixtures;
    use serena_core::tuple;

    fn setup() -> (NodeDirectory, DiscoveryQuery) {
        let dir = NodeDirectory::new("test");
        dir.register("sensor01", fixtures::temperature_sensor(1));
        dir.register("sensor06", fixtures::temperature_sensor(6));
        dir.set("sensor01", "location", Value::str("corridor"));
        dir.set("sensor06", "location", Value::str("office"));
        let q = DiscoveryQuery::new("getTemperature", sensors_schema(), "sensor").unwrap();
        (dir, q)
    }

    #[test]
    fn refresh_builds_sensor_table() {
        let (dir, q) = setup();
        let rel = q.refresh_in(&dir);
        assert_eq!(rel.len(), 2);
        assert!(rel.contains(&tuple![Value::service("sensor01"), "corridor"]));
        assert!(rel.contains(&tuple![Value::service("sensor06"), "office"]));
        // the virtual `temperature` column and the BP travel with the schema
        assert!(rel.schema().is_virtual("temperature"));
        assert_eq!(rel.schema().binding_patterns().len(), 1);
    }

    #[test]
    fn churn_is_reflected_on_refresh() {
        let (dir, q) = setup();
        assert_eq!(q.refresh_in(&dir).len(), 2);
        dir.register("sensor22", fixtures::temperature_sensor(22));
        dir.set("sensor22", "location", Value::str("roof"));
        assert_eq!(q.refresh_in(&dir).len(), 3);
        dir.deregister("sensor01");
        assert_eq!(q.refresh_in(&dir).len(), 2);
    }

    #[test]
    fn missing_metadata_skips_service() {
        let (dir, q) = setup();
        dir.register("sensor99", fixtures::temperature_sensor(99));
        // no location metadata yet → not describable → skipped
        assert_eq!(q.refresh_in(&dir).len(), 2);
        dir.set("sensor99", "location", Value::str("basement"));
        assert_eq!(q.refresh_in(&dir).len(), 3);
    }

    #[test]
    fn service_attr_must_be_real() {
        let bad = serena_core::schema::XSchema::builder()
            .virt("sensor", serena_core::value::DataType::Service)
            .real("location", serena_core::value::DataType::Str)
            .build()
            .unwrap();
        assert!(DiscoveryQuery::new("getTemperature", bad, "sensor").is_err());
    }

    #[test]
    fn unrelated_prototypes_not_listed() {
        let (dir, q) = setup();
        dir.register("camera01", fixtures::camera(1));
        dir.set("camera01", "location", Value::str("office"));
        // camera01 implements checkPhoto/takePhoto, not getTemperature
        assert_eq!(q.refresh_in(&dir).len(), 2);
    }
}
