//! Export/import round-trips for the resilience layer's tick-surviving
//! state at rolling-window boundaries: `HealthTracker` windows that are
//! empty, exactly full, and mid-rotation (older outcomes already pushed
//! out), plus `ResilienceState` breakers caught in every phase of the
//! closed → open → half-open cycle. These states were previously only
//! exercised incidentally through full-engine recovery tests.

use std::sync::Arc;

use serena_core::prototype::examples as protos;
use serena_core::service::{fixtures, Invoker};
use serena_core::snapshot::{Reader, Writer};
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::ServiceRef;
use serena_services::faults::{FaultPolicy, FaultyService};
use serena_services::health::HealthTracker;
use serena_services::registry::DynamicRegistry;
use serena_services::resilience::{
    BreakerState, ResiliencePolicy, ResilienceState, ResilientInvoker,
};

fn roundtrip_health(src: &HealthTracker, dst: &HealthTracker) {
    let mut w = Writer::new();
    src.export_state(&mut w);
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    dst.import_state(&mut r).expect("import");
    assert!(r.is_at_end(), "trailing bytes after health import");
    // byte-identity of a re-export is the strongest equality check the
    // tracker offers (it covers the packed window bits, not just the
    // derived report)
    let mut w2 = Writer::new();
    dst.export_state(&mut w2);
    assert_eq!(bytes, w2.into_bytes(), "re-export differs");
}

fn roundtrip_resilience(src: &ResilienceState, dst: &ResilienceState) {
    let mut w = Writer::new();
    src.export_state(&mut w);
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    dst.import_state(&mut r).expect("import");
    assert!(r.is_at_end(), "trailing bytes after resilience import");
    let mut w2 = Writer::new();
    dst.export_state(&mut w2);
    assert_eq!(bytes, w2.into_bytes(), "re-export differs");
}

fn flaky_registry(policy: FaultPolicy) -> DynamicRegistry {
    let faulty = FaultyService::new(fixtures::temperature_sensor(1), policy);
    let reg = DynamicRegistry::new();
    reg.register("flaky", faulty);
    reg
}

fn call(
    invoker: &ResilientInvoker<'_, &DynamicRegistry>,
    sref: &ServiceRef,
    at: Instant,
) -> Result<Vec<Tuple>, serena_core::error::EvalError> {
    invoker.invoke(&protos::get_temperature(), sref, &Tuple::empty(), at)
}

#[test]
fn health_empty_window_round_trips() {
    let src = HealthTracker::new(8);
    let dst = HealthTracker::new(8);
    roundtrip_health(&src, &dst);
    assert!(dst.is_empty());

    // a tracked service whose window holds outcomes but no failures is
    // distinct from an untracked one
    let sref = ServiceRef::new("s1");
    src.record(&sref, Instant(0), None);
    roundtrip_health(&src, &dst);
    assert_eq!(dst.health_of(&sref).unwrap().attempts, 1);
    assert_eq!(dst.health_of(&sref).unwrap().failure_rate, 0.0);
}

#[test]
fn health_exactly_full_window_round_trips() {
    let window = 8;
    let src = HealthTracker::new(window);
    let sref = ServiceRef::new("s1");
    // exactly `window` outcomes, alternating failure/success
    for i in 0..window as u64 {
        let err = (i % 2 == 0).then_some("boom");
        src.record(&sref, Instant(i), err);
    }
    let dst = HealthTracker::new(window);
    roundtrip_health(&src, &dst);
    let h = dst.health_of(&sref).unwrap();
    assert_eq!(h.window_len, window);
    assert_eq!(h.failure_rate, 0.5);
    assert_eq!(h.attempts, window as u64);
}

#[test]
fn health_mid_rotation_window_round_trips() {
    let window = 4;
    let src = HealthTracker::new(window);
    let sref = ServiceRef::new("s1");
    // 10 outcomes through a window of 4: the first 6 have rotated out.
    // Failures land only in the first 6, so the surviving window is all
    // successes even though `failures` remembers them.
    for i in 0..6u64 {
        src.record(&sref, Instant(i), Some("early"));
    }
    for i in 6..10u64 {
        src.record(&sref, Instant(i), None);
    }
    let dst = HealthTracker::new(window);
    roundtrip_health(&src, &dst);
    let h = dst.health_of(&sref).unwrap();
    assert_eq!(h.attempts, 10);
    assert_eq!(h.failures, 6);
    assert_eq!(h.window_len, window);
    assert_eq!(h.failure_rate, 0.0, "rotated-out failures must not leak");
    assert_eq!(h.last_seen, Some(Instant(9)));
}

#[test]
fn health_import_truncates_wider_windows() {
    // a snapshot from a node configured with a wider window keeps only
    // the most recent outcomes the importing window can hold
    let src = HealthTracker::new(8);
    let sref = ServiceRef::new("s1");
    for i in 0..8u64 {
        // failures only in the older half
        src.record(&sref, Instant(i), (i < 4).then_some("old"));
    }
    let dst = HealthTracker::new(4);
    let mut w = Writer::new();
    src.export_state(&mut w);
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    dst.import_state(&mut r).expect("import");
    let h = dst.health_of(&sref).unwrap();
    assert_eq!(h.window_len, 4);
    assert_eq!(h.failure_rate, 0.0, "kept the most recent outcomes");
}

#[test]
fn resilience_fresh_state_round_trips() {
    let src = ResilienceState::new();
    let dst = ResilienceState::new();
    roundtrip_resilience(&src, &dst);
    assert!(dst.breakers().is_empty());
}

/// Drive a breaker through its cycle with an always-failing service,
/// snapshotting at each phase: failure streak (closed, record present),
/// open, reopened after a failed probe.
#[test]
fn resilience_breaker_phases_round_trip() {
    let reg = flaky_registry(FaultPolicy::EveryNth(1)); // always fails
    let policy = ResiliencePolicy::disabled().with_breaker(3, 4);
    let state = Arc::new(ResilienceState::new());
    let invoker = ResilientInvoker::with_state(&reg, policy, state.clone());
    let sref = ServiceRef::new("flaky");

    // phase 1: one failure — breaker still closed but a streak record
    // exists (the mid-rotation analogue for breakers)
    assert!(call(&invoker, &sref, Instant(0)).is_err());
    assert_eq!(state.breaker_of(&sref), BreakerState::Closed);
    let dst = ResilienceState::new();
    roundtrip_resilience(&state, &dst);
    assert_eq!(dst.breaker_of(&sref), BreakerState::Closed);

    // phase 2: trip it open
    assert!(call(&invoker, &sref, Instant(1)).is_err());
    assert!(call(&invoker, &sref, Instant(2)).is_err());
    let opened = state.breaker_of(&sref);
    assert!(matches!(opened, BreakerState::Open { .. }), "{opened}");
    roundtrip_resilience(&state, &dst);
    assert_eq!(dst.breaker_of(&sref), opened);

    // phase 3: cooldown elapsed — the probe fails half-open and reopens
    assert!(call(&invoker, &sref, Instant(6)).is_err());
    let reopened = state.breaker_of(&sref);
    assert!(matches!(reopened, BreakerState::Open { .. }), "{reopened}");
    roundtrip_resilience(&state, &dst);
    assert_eq!(dst.breaker_of(&sref), reopened);
    assert_eq!(dst.counters(), state.counters());
}

/// A half-open breaker mid-probe-budget survives export/import and the
/// restored copy finishes the cycle exactly like the original would.
#[test]
fn resilience_half_open_mid_probe_round_trips() {
    let reg = flaky_registry(FaultPolicy::Intermittent { fail: 3, ok: 100 });
    let mut policy = ResiliencePolicy::disabled().with_breaker(3, 4);
    policy.half_open_probes = 3;
    let state = Arc::new(ResilienceState::new());
    let invoker = ResilientInvoker::with_state(&reg, policy, state.clone());
    let sref = ServiceRef::new("flaky");
    for t in 0..3u64 {
        assert!(call(&invoker, &sref, Instant(t)).is_err());
    }
    assert!(matches!(state.breaker_of(&sref), BreakerState::Open { .. }));
    // snapshot the open breaker, restore it into a fresh state, and let
    // the restored copy run the half-open probe (fault cycle now in its
    // ok phase): the probe succeeds and the breaker closes.
    let mut w = Writer::new();
    state.export_state(&mut w);
    let bytes = w.into_bytes();
    let restored = Arc::new(ResilienceState::new());
    restored
        .import_state(&mut Reader::new(&bytes))
        .expect("import");
    let invoker2 = ResilientInvoker::with_state(&reg, policy, restored.clone());
    assert!(call(&invoker2, &sref, Instant(6)).is_ok());
    assert_eq!(restored.breaker_of(&sref), BreakerState::Closed);
    // the original, run the same way, agrees
    assert!(call(&invoker, &sref, Instant(6)).is_ok());
    assert_eq!(state.breaker_of(&sref), BreakerState::Closed);
}

#[test]
fn resilience_counters_round_trip_independently_of_breakers() {
    let reg = flaky_registry(FaultPolicy::EveryNth(1));
    let policy = ResiliencePolicy::disabled()
        .with_breaker(2, 10)
        .with_retries(1);
    let state = Arc::new(ResilienceState::new());
    let invoker = ResilientInvoker::with_state(&reg, policy, state.clone());
    let sref = ServiceRef::new("flaky");
    for t in 0..4u64 {
        let _ = call(&invoker, &sref, Instant(t));
    }
    let c = state.counters();
    assert!(c.retries >= 1);
    assert!(c.breaker_opened >= 1);
    assert!(c.rejected >= 1);
    let dst = ResilienceState::new();
    roundtrip_resilience(&state, &dst);
    assert_eq!(dst.counters(), c);
}
