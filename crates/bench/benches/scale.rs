//! Massive-scale benchmark (ROADMAP item 1, §7's "benchmark for pervasive
//! environments"): a 10⁴-device zipf-skewed fleet, trace-driven arrivals,
//! and 120 concurrent continuous queries, measured end to end.
//!
//! ```sh
//! cargo bench -p serena-bench --bench scale
//! ```
//!
//! Writes `BENCH_scale.json` (override with `SERENA_BENCH_OUT`) with the
//! objective indicators: tuples/sec, merged p99 tick latency and memory per
//! query, plus a `scaling` curve — the same workload re-run at each
//! scheduler width in `SERENA_SCALE_WORKER_COUNTS` (default `1,2,4,8`),
//! gated so the widest pool is at least as fast as the single-worker run
//! and (on overlapping workloads) cross-query β dedup actually fired.
//! Scale down for smokes with `SERENA_SCALE_DEVICES`,
//! `SERENA_SCALE_QUERIES`, `SERENA_SCALE_TICKS` … (see
//! [`serena_bench::envgen::ScaleConfig::from_env`]).

use serena_bench::criterion_group;
use serena_bench::envgen::{run_scale, ScaleConfig, ScaleOutcome};
use serena_bench::harness::{take_records, BenchmarkId, Criterion};

fn bench_scale(c: &mut Criterion) {
    let config = ScaleConfig::from_env();
    let mut group = c.benchmark_group("scale");

    // Steady-state tick cost of the full environment under load.
    let (mut pems, _names) = config.deploy();
    pems.run_ticks(4); // fill windows, warm β caches, settle discovery
    group.bench_with_input(
        BenchmarkId::new("tick", format!("{}dev-{}q", config.devices, config.queries)),
        &(),
        |b, ()| {
            b.iter(|| pems.tick());
        },
    );
    group.finish();
}

criterion_group!(benches, bench_scale);

/// Scheduler widths for the scaling curve: `SERENA_SCALE_WORKER_COUNTS`
/// (comma-separated), default `1,2,4,8` — the CI smoke uses `1,4`.
fn worker_counts() -> Vec<usize> {
    std::env::var("SERENA_SCALE_WORKER_COUNTS")
        .unwrap_or_else(|_| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|w| w.trim().parse().ok())
        .filter(|&w| w > 0)
        .collect()
}

fn main() {
    let config = ScaleConfig::from_env();
    println!(
        "scale run: {} sensors + {} cameras + {} messengers, {} queries, {} ticks",
        config.devices, config.cameras, config.messengers, config.queries, config.ticks
    );

    benches();
    let records = take_records();

    // The scaling curve: the identical workload at each scheduler width.
    let counts = worker_counts();
    let mut curve: Vec<ScaleOutcome> = Vec::new();
    for &workers in &counts {
        let outcome = run_scale(&config.with_workers(workers));
        println!(
            "  {workers} worker(s): {:.0} tuples/s, p99 tick {:.3} ms, \
             {} tasks stolen, {} β calls deduped",
            outcome.tuples_per_sec,
            outcome.p99_tick_ns as f64 / 1e6,
            outcome.sched_steals,
            outcome.beta_dedup,
        );
        curve.push(outcome);
    }
    // Headline = the best point on the curve (the widest pool on real
    // multi-core hardware; the single worker on a one-core host).
    let outcome = curve
        .iter()
        .max_by(|a, b| a.tuples_per_sec.total_cmp(&b.tuples_per_sec))
        .expect("at least one worker count")
        .clone();
    println!(
        "{} devices / {} queries over {} ticks: {:.0} tuples/s in \
         ({} ingested, {} emitted, {} errors survived), p99 tick {:.3} ms, \
         {} B snapshot ({} B/query)",
        outcome.devices,
        outcome.queries,
        outcome.ticks,
        outcome.tuples_per_sec,
        outcome.tuples_in,
        outcome.tuples_out,
        outcome.errors,
        outcome.p99_tick_ns as f64 / 1e6,
        outcome.mem_bytes,
        outcome.mem_per_query,
    );

    // Sanity gates: an empty run must fail loudly, not write plausible JSON.
    if outcome.tuples_in == 0 || outcome.tuples_out == 0 || outcome.p99_tick_ns == 0 {
        eprintln!("scale run produced no work: {outcome:?}");
        std::process::exit(1);
    }

    // Scaling gate: the widest pool must not be slower than one worker.
    // Only meaningful where the host can actually run workers side by
    // side — on a single-core machine extra workers just interleave the
    // same CPU-bound ticks and the curve is legitimately flat-to-negative.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let single = curve.iter().find(|o| o.workers == 1);
    let widest = curve.iter().max_by_key(|o| o.workers);
    if cores < 2 {
        println!("single-core host: scaling gate skipped (curve still recorded)");
    } else if let (Some(single), Some(widest)) = (single, widest) {
        if widest.workers > 1 && widest.tuples_per_sec < single.tuples_per_sec {
            eprintln!(
                "scaling regression: {} workers ran at {:.0} tuples/s, \
                 below the single-worker {:.0}",
                widest.workers, widest.tuples_per_sec, single.tuples_per_sec
            );
            std::process::exit(1);
        }
    }

    // Dedup gate: with ≥ 2 overlapping `sampled` queries the cross-query
    // memo must have fired somewhere along the curve.
    let overlapping = config.queries / 20 >= 2;
    if overlapping && curve.iter().all(|o| o.beta_dedup == 0) {
        eprintln!("overlapping workload saw zero cross-query β dedup");
        std::process::exit(1);
    }

    let mut json = String::from("{\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}}}{sep}\n",
            r.label, r.mean_ns, r.best_ns
        ));
    }
    json.push_str("  ]");
    json.push_str(&format!(
        ",\n  \"devices\": {},\n  \"queries\": {},\n  \"ticks\": {}",
        outcome.devices, outcome.queries, outcome.ticks
    ));
    json.push_str(&format!(
        ",\n  \"tuples_per_sec\": {:.1},\n  \"tuples_in\": {},\n  \"tuples_out\": {}",
        outcome.tuples_per_sec, outcome.tuples_in, outcome.tuples_out
    ));
    json.push_str(&format!(
        ",\n  \"errors\": {},\n  \"elapsed_ns\": {}",
        outcome.errors, outcome.elapsed_ns
    ));
    json.push_str(&format!(
        ",\n  \"p99_tick_ns\": {},\n  \"mem_bytes\": {},\n  \"mem_per_query_bytes\": {}",
        outcome.p99_tick_ns, outcome.mem_bytes, outcome.mem_per_query
    ));
    json.push_str(",\n  \"scaling\": [\n");
    for (i, o) in curve.iter().enumerate() {
        let sep = if i + 1 < curve.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"workers\": {}, \"tuples_per_sec\": {:.1}, \"p99_tick_ns\": {}, \
             \"elapsed_ns\": {}, \"sched_steals\": {}, \"beta_dedup\": {}}}{sep}\n",
            o.workers, o.tuples_per_sec, o.p99_tick_ns, o.elapsed_ns, o.sched_steals, o.beta_dedup
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::env::var("SERENA_BENCH_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_string());
    std::fs::write(&path, json).expect("write bench results");
    println!("wrote {path}");
}
