//! Massive-scale benchmark (ROADMAP item 1, §7's "benchmark for pervasive
//! environments"): a 10⁴-device zipf-skewed fleet, trace-driven arrivals,
//! and 120 concurrent continuous queries, measured end to end.
//!
//! ```sh
//! cargo bench -p serena-bench --bench scale
//! ```
//!
//! Writes `BENCH_scale.json` (override with `SERENA_BENCH_OUT`) with the
//! objective indicators: tuples/sec, merged p99 tick latency and memory per
//! query. Scale down for smokes with `SERENA_SCALE_DEVICES`,
//! `SERENA_SCALE_QUERIES`, `SERENA_SCALE_TICKS` … (see
//! [`serena_bench::envgen::ScaleConfig::from_env`]).

use serena_bench::criterion_group;
use serena_bench::envgen::{run_scale, ScaleConfig};
use serena_bench::harness::{take_records, BenchmarkId, Criterion};

fn bench_scale(c: &mut Criterion) {
    let config = ScaleConfig::from_env();
    let mut group = c.benchmark_group("scale");

    // Steady-state tick cost of the full environment under load.
    let (mut pems, _names) = config.deploy();
    pems.run_ticks(4); // fill windows, warm β caches, settle discovery
    group.bench_with_input(
        BenchmarkId::new("tick", format!("{}dev-{}q", config.devices, config.queries)),
        &(),
        |b, ()| {
            b.iter(|| pems.tick());
        },
    );
    group.finish();
}

criterion_group!(benches, bench_scale);

fn main() {
    let config = ScaleConfig::from_env();
    println!(
        "scale run: {} sensors + {} cameras + {} messengers, {} queries, {} ticks",
        config.devices, config.cameras, config.messengers, config.queries, config.ticks
    );

    benches();
    let records = take_records();

    let outcome = run_scale(&config);
    println!(
        "{} devices / {} queries over {} ticks: {:.0} tuples/s in \
         ({} ingested, {} emitted, {} errors survived), p99 tick {:.3} ms, \
         {} B snapshot ({} B/query)",
        outcome.devices,
        outcome.queries,
        outcome.ticks,
        outcome.tuples_per_sec,
        outcome.tuples_in,
        outcome.tuples_out,
        outcome.errors,
        outcome.p99_tick_ns as f64 / 1e6,
        outcome.mem_bytes,
        outcome.mem_per_query,
    );

    // Sanity gates: an empty run must fail loudly, not write plausible JSON.
    if outcome.tuples_in == 0 || outcome.tuples_out == 0 || outcome.p99_tick_ns == 0 {
        eprintln!("scale run produced no work: {outcome:?}");
        std::process::exit(1);
    }

    let mut json = String::from("{\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}}}{sep}\n",
            r.label, r.mean_ns, r.best_ns
        ));
    }
    json.push_str("  ]");
    json.push_str(&format!(
        ",\n  \"devices\": {},\n  \"queries\": {},\n  \"ticks\": {}",
        outcome.devices, outcome.queries, outcome.ticks
    ));
    json.push_str(&format!(
        ",\n  \"tuples_per_sec\": {:.1},\n  \"tuples_in\": {},\n  \"tuples_out\": {}",
        outcome.tuples_per_sec, outcome.tuples_in, outcome.tuples_out
    ));
    json.push_str(&format!(
        ",\n  \"errors\": {},\n  \"elapsed_ns\": {}",
        outcome.errors, outcome.elapsed_ns
    ));
    json.push_str(&format!(
        ",\n  \"p99_tick_ns\": {},\n  \"mem_bytes\": {},\n  \"mem_per_query_bytes\": {}\n}}\n",
        outcome.p99_tick_ns, outcome.mem_bytes, outcome.mem_per_query
    ));

    let path = std::env::var("SERENA_BENCH_OUT").unwrap_or_else(|_| "BENCH_scale.json".to_string());
    std::fs::write(&path, json).expect("write bench results");
    println!("wrote {path}");
}
