//! E8 — operator micro-benchmarks: throughput of every Serena operator vs
//! relation size, on the scaled workload.
//!
//! ```sh
//! cargo bench -p serena-bench --bench operators
//! ```

use serena_bench::harness::{BenchmarkId, Criterion, Throughput};
use serena_bench::{criterion_group, criterion_main};

use serena_bench::workload;
use serena_core::attr::attr;
use serena_core::formula::Formula;
use serena_core::ops;
use serena_core::time::Instant;

const SIZES: [usize; 3] = [100, 1_000, 10_000];

fn bench_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("select");
    for n in SIZES {
        let rel = workload::sensors_relation(n);
        let f = Formula::eq_const("location", "office");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter(|| ops::select(rel, &f).unwrap())
        });
    }
    group.finish();
}

fn bench_project(c: &mut Criterion) {
    let mut group = c.benchmark_group("project");
    for n in SIZES {
        let rel = workload::sensors_relation(n);
        let attrs = [attr("location")];
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter(|| ops::project(rel, &attrs).unwrap())
        });
    }
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");
    for n in [100usize, 1_000, 5_000] {
        // sensors ⋈ surveillance on `location`
        let sensors = workload::sensors_relation(n);
        let surveillance = serena_core::xrelation::XRelation::from_tuples(
            serena_core::schema::XSchema::builder()
                .real("location", serena_core::value::DataType::Str)
                .real("manager", serena_core::value::DataType::Str)
                .build()
                .unwrap(),
            workload::AREAS.iter().enumerate().map(|(i, a)| {
                serena_core::tuple::Tuple::new(vec![
                    serena_core::value::Value::str(*a),
                    serena_core::value::Value::str(format!("m{i}")),
                ])
            }),
        );
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &sensors, |b, sensors| {
            b.iter(|| ops::join(sensors, &surveillance).unwrap())
        });
    }
    group.finish();
}

fn bench_assign(c: &mut Criterion) {
    let mut group = c.benchmark_group("assign");
    for n in SIZES {
        let rel = workload::contacts_relation(n);
        let src = ops::AssignSource::constant("Hello!");
        let target = attr("text");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter(|| ops::assign(rel, &target, &src).unwrap())
        });
    }
    group.finish();
}

fn bench_invoke(c: &mut Criterion) {
    let mut group = c.benchmark_group("invoke");
    group.sample_size(20);
    for n in [100usize, 1_000, 5_000] {
        let rel = workload::sensors_relation(n);
        let reg = workload::scaled_registry(n, 0);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter(|| {
                let mut actions = serena_core::action::ActionSet::new();
                ops::invoke(
                    rel,
                    "getTemperature",
                    "sensor",
                    &reg,
                    Instant(1),
                    &mut actions,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate");
    for n in SIZES {
        // pre-invoked readings, grouped by location
        let rel = {
            let sensors = workload::sensors_relation(n);
            let reg = workload::scaled_registry(n, 0);
            let mut actions = serena_core::action::ActionSet::new();
            ops::invoke(
                &sensors,
                "getTemperature",
                "sensor",
                &reg,
                Instant(1),
                &mut actions,
            )
            .unwrap()
        };
        let group_attrs = [attr("location")];
        let aggs = [ops::AggSpec::new(ops::AggFun::Avg, "temperature")];
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rel, |b, rel| {
            b.iter(|| ops::aggregate(rel, &group_attrs, &aggs).unwrap())
        });
    }
    group.finish();
}

/// Ablation: the compiled (coordinate-resolved) selection path vs
/// re-interpreting the formula with per-tuple name lookups — the design
/// choice DESIGN.md calls out for the hot path.
fn bench_formula_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("formula_compiled_vs_interpreted");
    let n = 10_000usize;
    let rel = workload::sensors_relation(n);
    let f = Formula::eq_const("location", "office").or(Formula::eq_const("location", "lab"));
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("compiled", |b| {
        let compiled = f.compile(rel.schema()).unwrap();
        b.iter(|| rel.iter().filter(|t| compiled.matches(t).unwrap()).count())
    });
    group.bench_function("interpreted", |b| {
        b.iter(|| {
            rel.iter()
                .filter(|t| f.eval(rel.schema(), t).unwrap())
                .count()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_select,
    bench_project,
    bench_join,
    bench_assign,
    bench_invoke,
    bench_aggregate,
    bench_formula_ablation
);
criterion_main!(benches);
