//! E19 — the price of distribution: the identical β fan-out executed
//! against a raw local registry, the unified [`NodeDirectory`] surface
//! (the ISSUE 9 API-redesign gate: the abstraction itself must stay
//! within a few percent of the raw registry), and proxied over each
//! transport (in-proc, Unix-domain socket, TCP loopback).
//!
//! ```sh
//! cargo bench -p serena-bench --bench remote_overhead
//! ```
//!
//! Writes `BENCH_remote.json` (override with `SERENA_BENCH_OUT`). When
//! `SERENA_BENCH_ASSERT_OVERHEAD_PCT` is set (CI smoke), the process
//! exits nonzero if the *directory vs raw registry* overhead — measured
//! interleaved, median of paired rounds — exceeds that bound. Remote
//! numbers are informational: they quantify the wire, not a regression.

use std::sync::Arc;

use serena_bench::criterion_group;
use serena_bench::harness::{take_records, BenchRecord, BenchmarkId, Criterion, Throughput};
use serena_bench::workload;

use serena_core::exec::ExecContext;
use serena_core::plan::Plan;
use serena_core::service::fixtures;
use serena_core::time::Instant;
use serena_services::directory::NodeDirectory;
use serena_services::node::{NodeHandle, ServiceNode};
use serena_services::transport::{InProcTransport, SocketTransport, Transport};

/// Sensors invoked per pass — every row is a live β call.
const SENSORS: usize = 64;

fn beta_plan() -> Plan {
    Plan::relation("sensors").invoke("getTemperature", "sensor")
}

/// A directory hosting the full fleet locally.
fn local_directory(node: &str) -> Arc<NodeDirectory> {
    let dir = Arc::new(NodeDirectory::new(node));
    for i in 0..SENSORS {
        dir.register(format!("s{i}"), fixtures::temperature_sensor(i as u64));
    }
    dir
}

/// An edge directory whose whole fleet is proxied from a served host —
/// every β call relays over `transport`. The handle keeps the host
/// endpoint alive for the caller's lifetime.
fn remote_directory(transport: Arc<dyn Transport>, addr: &str) -> (Arc<NodeDirectory>, NodeHandle) {
    let host = local_directory("host");
    let handle = ServiceNode::serve(Arc::clone(&transport), addr, host).expect("host serves");
    let edge = Arc::new(NodeDirectory::new("edge"));
    edge.connect_peer(transport, handle.addr())
        .expect("edge links host");
    (edge, handle)
}

fn bench_remote_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("remote_overhead");
    let env = workload::scaled_environment(SENSORS, 0, 0);
    let plan = beta_plan();
    group.throughput(Throughput::Elements(SENSORS as u64));

    let reg = workload::scaled_registry(SENSORS, 0);
    let ctx = ExecContext::new(&env, &reg, Instant(1));
    // warm caches/allocator before the first measured variant, so
    // ordering does not bias the comparison
    let warmup = std::time::Instant::now();
    while warmup.elapsed() < std::time::Duration::from_millis(200) {
        ctx.execute(&plan).unwrap();
    }
    group.bench_with_input(
        BenchmarkId::new("invoke", "local_registry"),
        &plan,
        |b, p| b.iter(|| ctx.execute(p).unwrap()),
    );

    let dir = local_directory("local");
    let ctx = ExecContext::new(&env, &*dir, Instant(1));
    group.bench_with_input(
        BenchmarkId::new("invoke", "local_directory"),
        &plan,
        |b, p| b.iter(|| ctx.execute(p).unwrap()),
    );

    let (edge, _inproc) =
        remote_directory(Arc::new(InProcTransport::new()), "inproc:bench-remote-host");
    let ctx = ExecContext::new(&env, &*edge, Instant(1));
    group.bench_with_input(
        BenchmarkId::new("invoke", "remote_inproc"),
        &plan,
        |b, p| b.iter(|| ctx.execute(p).unwrap()),
    );

    #[cfg(unix)]
    {
        let addr = format!(
            "uds:{}",
            std::env::temp_dir()
                .join(format!("serena-bench-remote-{}.sock", std::process::id()))
                .display()
        );
        let (edge, _uds) = remote_directory(Arc::new(SocketTransport::new()), &addr);
        let ctx = ExecContext::new(&env, &*edge, Instant(1));
        group.bench_with_input(BenchmarkId::new("invoke", "remote_uds"), &plan, |b, p| {
            b.iter(|| ctx.execute(p).unwrap())
        });
    }

    let (edge, _tcp) = remote_directory(Arc::new(SocketTransport::new()), "tcp:127.0.0.1:0");
    let ctx = ExecContext::new(&env, &*edge, Instant(1));
    group.bench_with_input(BenchmarkId::new("invoke", "remote_tcp"), &plan, |b, p| {
        b.iter(|| ctx.execute(p).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_remote_overhead);

fn find<'a>(records: &'a [BenchRecord], label: &str) -> Option<&'a BenchRecord> {
    records.iter().find(|r| r.label == label)
}

/// The gated number. Sequential A-then-B benchmarking is biased by
/// clock/allocator drift, so this interleaves short batches of the raw
/// registry and the directory surface and takes the median of paired
/// per-round ratios.
fn interleaved_overhead_pct() -> (f64, f64, f64) {
    const ROUNDS: usize = 100;
    const PASSES: usize = 10;
    let env = workload::scaled_environment(SENSORS, 0, 0);
    let plan = beta_plan();
    let reg = workload::scaled_registry(SENSORS, 0);
    let ctx_registry = ExecContext::new(&env, &reg, Instant(1));
    let dir = local_directory("local");
    let ctx_directory = ExecContext::new(&env, &*dir, Instant(1));

    for _ in 0..PASSES * 4 {
        ctx_registry.execute(&plan).unwrap();
        ctx_directory.execute(&plan).unwrap();
    }
    let mut ratios = Vec::with_capacity(ROUNDS);
    let mut registry_rounds = Vec::with_capacity(ROUNDS);
    let mut directory_rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let start = std::time::Instant::now();
        for _ in 0..PASSES {
            ctx_registry.execute(&plan).unwrap();
        }
        let registry_ns = start.elapsed().as_nanos() as f64;
        let start = std::time::Instant::now();
        for _ in 0..PASSES {
            ctx_directory.execute(&plan).unwrap();
        }
        let directory_ns = start.elapsed().as_nanos() as f64;
        ratios.push(directory_ns / registry_ns);
        registry_rounds.push(registry_ns / PASSES as f64);
        directory_rounds.push(directory_ns / PASSES as f64);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    (
        (median(&mut ratios) - 1.0) * 100.0,
        median(&mut registry_rounds),
        median(&mut directory_rounds),
    )
}

fn main() {
    benches();
    let records = take_records();

    let (overhead_pct, registry_ns, directory_ns) = interleaved_overhead_pct();
    println!(
        "directory surface overhead vs raw registry: {overhead_pct:.2}% interleaved \
         ({registry_ns:.0} ns → {directory_ns:.0} ns/pass)"
    );
    let per_call = |label: &str| find(&records, label).map(|r| r.mean_ns as f64 / SENSORS as f64);
    for (name, label) in [
        ("in-proc", "remote_overhead/invoke/remote_inproc"),
        ("uds", "remote_overhead/invoke/remote_uds"),
        ("tcp", "remote_overhead/invoke/remote_tcp"),
    ] {
        if let Some(ns) = per_call(label) {
            println!("remote β via {name}: {ns:.0} ns/call");
        }
    }

    let mut json = String::from("{\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}}}{sep}\n",
            r.label, r.mean_ns, r.best_ns
        ));
    }
    json.push_str("  ]");
    json.push_str(&format!(",\n  \"overhead_pct\": {overhead_pct:.3}"));
    json.push_str(&format!(
        ",\n  \"registry_ns_per_pass\": {registry_ns:.0},\n  \"directory_ns_per_pass\": {directory_ns:.0}"
    ));
    for (key, label) in [
        (
            "remote_inproc_ns_per_call",
            "remote_overhead/invoke/remote_inproc",
        ),
        (
            "remote_uds_ns_per_call",
            "remote_overhead/invoke/remote_uds",
        ),
        (
            "remote_tcp_ns_per_call",
            "remote_overhead/invoke/remote_tcp",
        ),
    ] {
        if let Some(ns) = per_call(label) {
            json.push_str(&format!(",\n  \"{key}\": {ns:.0}"));
        }
    }
    json.push_str(&format!(",\n  \"sensors\": {SENSORS}\n}}\n"));

    let path =
        std::env::var("SERENA_BENCH_OUT").unwrap_or_else(|_| "BENCH_remote.json".to_string());
    std::fs::write(&path, json).expect("write bench results");
    println!("wrote {path}");

    if let Ok(bound) = std::env::var("SERENA_BENCH_ASSERT_OVERHEAD_PCT") {
        let bound: f64 = bound.parse().expect("numeric overhead bound");
        if overhead_pct > bound {
            eprintln!("directory overhead {overhead_pct:.2}% exceeds bound {bound}%");
            std::process::exit(1);
        }
        println!("overhead within {bound}% bound");
    }
}
