//! E18 — span-tracing overhead: the same continuous workload ticked with
//! the flight recorder **armed** (every scheduler round, job, query tick,
//! operator and β invocation records a span into the bounded ring) vs
//! **disarmed** (the tracer is wired through every layer but records
//! nothing).
//!
//! ```sh
//! cargo bench -p serena-bench --bench trace_overhead
//! ```
//!
//! Writes `BENCH_trace.json` (override with `SERENA_BENCH_OUT`). When
//! `SERENA_BENCH_ASSERT_OVERHEAD_PCT` is set (CI smoke), the process exits
//! nonzero if the measured armed-recorder overhead exceeds that bound —
//! the ISSUE 8 acceptance gate is 5%.

use serena_bench::criterion_group;
use serena_bench::envgen::ScaleConfig;
use serena_bench::harness::{take_records, BenchRecord, BenchmarkId, Criterion};

use serena_pems::Pems;

/// A small-but-real environment: enough per-tick work (window maintenance,
/// β invocations, scheduler rounds) that recorder overhead is measured
/// against a realistic denominator, small enough to iterate.
fn config() -> ScaleConfig {
    ScaleConfig {
        seed: 42,
        devices: 200,
        cameras: 8,
        messengers: 4,
        queries: 16,
        ticks: 0, // unused here: this bench drives ticks itself
        mean_arrivals: 64,
        workers: 0,
    }
}

fn deploy(tracing: bool) -> Pems {
    let cfg = config();
    let spec = cfg.spec();
    let (mut pems, _fleet) = spec.build().expect("trace bench spec deploys");
    pems.set_tracing(tracing);
    cfg.workload()
        .register_into(&mut pems, &spec)
        .expect("trace bench workload registers");
    // fill windows, warm β caches, settle discovery
    pems.run_ticks(4);
    pems
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");

    let mut disarmed = deploy(false);
    // warm caches/allocator before the first measured group, so ordering
    // does not bias the comparison
    let warmup = std::time::Instant::now();
    while warmup.elapsed() < std::time::Duration::from_millis(200) {
        disarmed.tick();
    }
    group.bench_with_input(BenchmarkId::new("tick", "disarmed"), &(), |b, ()| {
        b.iter(|| disarmed.tick())
    });

    let mut armed = deploy(true);
    group.bench_with_input(BenchmarkId::new("tick", "armed"), &(), |b, ()| {
        b.iter(|| armed.tick())
    });
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);

fn find<'a>(records: &'a [BenchRecord], label: &str) -> &'a BenchRecord {
    records
        .iter()
        .find(|r| r.label == label)
        .unwrap_or_else(|| panic!("missing record {label}"))
}

/// The headline overhead number. Sequential A-then-B benchmarking is biased
/// by clock/allocator drift, so this interleaves short batches of both
/// variants (each runtime advancing the same number of instants per round)
/// and takes the median of the paired per-round ratios.
fn interleaved_overhead_pct() -> (f64, f64, f64, u64) {
    const ROUNDS: usize = 100;
    const PASSES: usize = 10;
    let mut disarmed = deploy(false);
    let mut armed = deploy(true);

    for _ in 0..PASSES * 4 {
        disarmed.tick();
        armed.tick();
    }
    // paired per-round ratios; the median is immune to the load spikes a
    // mean-of-totals comparison absorbs wholesale
    let mut ratios = Vec::with_capacity(ROUNDS);
    let mut disarmed_rounds = Vec::with_capacity(ROUNDS);
    let mut armed_rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let start = std::time::Instant::now();
        for _ in 0..PASSES {
            disarmed.tick();
        }
        let disarmed_ns = start.elapsed().as_nanos() as f64;
        let start = std::time::Instant::now();
        for _ in 0..PASSES {
            armed.tick();
        }
        let armed_ns = start.elapsed().as_nanos() as f64;
        ratios.push(armed_ns / disarmed_ns);
        disarmed_rounds.push(disarmed_ns / PASSES as f64);
        armed_rounds.push(armed_ns / PASSES as f64);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let recorded = armed.flight_recorder().snapshot().len() as u64;
    (
        (median(&mut ratios) - 1.0) * 100.0,
        median(&mut disarmed_rounds),
        median(&mut armed_rounds),
        recorded,
    )
}

fn main() {
    benches();
    let records = take_records();

    let disarmed = find(&records, "trace_overhead/tick/disarmed");
    let armed = find(&records, "trace_overhead/tick/armed");
    let sequential_pct =
        (armed.mean_ns as f64 - disarmed.mean_ns as f64) / disarmed.mean_ns.max(1) as f64 * 100.0;
    let (overhead_pct, disarmed_ns, armed_ns, spans_retained) = interleaved_overhead_pct();
    println!(
        "flight recorder overhead vs disarmed: {overhead_pct:.2}% interleaved \
         ({disarmed_ns:.0} ns → {armed_ns:.0} ns/tick; sequential: {sequential_pct:.2}%; \
         {spans_retained} spans retained)"
    );
    assert!(
        spans_retained > 0,
        "armed run retained no spans — the bench measured nothing"
    );

    let cfg = config();
    let mut json = String::from("{\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}}}{sep}\n",
            r.label, r.mean_ns, r.best_ns
        ));
    }
    json.push_str("  ]");
    json.push_str(&format!(",\n  \"overhead_pct\": {overhead_pct:.3}"));
    json.push_str(&format!(
        ",\n  \"disarmed_ns_per_tick\": {disarmed_ns:.0},\n  \"armed_ns_per_tick\": {armed_ns:.0}"
    ));
    json.push_str(&format!(",\n  \"spans_retained\": {spans_retained}"));
    json.push_str(&format!(
        ",\n  \"devices\": {}, \"queries\": {}, \"mean_arrivals\": {}\n}}\n",
        cfg.devices, cfg.queries, cfg.mean_arrivals
    ));

    let path = std::env::var("SERENA_BENCH_OUT").unwrap_or_else(|_| "BENCH_trace.json".to_string());
    std::fs::write(&path, json).expect("write bench results");
    println!("wrote {path}");

    if let Ok(bound) = std::env::var("SERENA_BENCH_ASSERT_OVERHEAD_PCT") {
        let bound: f64 = bound.parse().expect("numeric overhead bound");
        if overhead_pct > bound {
            eprintln!("span tracing overhead {overhead_pct:.2}% exceeds bound {bound}%");
            std::process::exit(1);
        }
        println!("overhead within {bound}% bound");
    }
}
