//! Checkpoint overhead: what one snapshot of a steady-state runtime costs
//! relative to one tick of the same runtime — the price of enabling
//! per-tick recovery.
//!
//! ```sh
//! cargo bench -p serena-bench --bench checkpoint_overhead
//! ```
//!
//! Writes `BENCH_recovery.json` (override with `SERENA_BENCH_OUT`). When
//! `SERENA_BENCH_ASSERT_OVERHEAD_PCT` is set (CI smoke), the process exits
//! nonzero if snapshot encoding costs more than that percentage of a tick.

use serena_bench::criterion_group;
use serena_bench::harness::{take_records, BenchRecord, BenchmarkId, Criterion, Throughput};

use serena_core::physical::ExecOptions;
use serena_core::time::Instant;
use serena_pems::pems::Pems;
use serena_pems::recovery::RecoveryManager;
use serena_services::bus::BusConfig;

/// Window period of the hot query — the dominant snapshot payload (the
/// ring holds `WINDOW` batches of `ROWS_PER_TICK` tuples at steady state).
const WINDOW: u64 = 64;
/// Tuples the deterministic stream emits per tick.
const ROWS_PER_TICK: usize = 2;
/// Sensors sampled live (βˢ, period 1) every tick — the paper's
/// continuous-sensing workload, where per-tick service invocations
/// dominate tick time.
const SENSORS: usize = 16;

/// A runtime in steady state: a windowed stream query whose ring is full,
/// a β query whose cache holds every sensor, and a βˢ query re-sampling
/// every sensor each tick.
fn steady_pems() -> Pems {
    use serena_core::service::fixtures;
    let mut pems = Pems::builder()
        .bus(BusConfig::instant())
        .exec_options(ExecOptions::parallel(4))
        .build();
    let reg = pems.directory();
    let mut inserts = String::new();
    for i in 0..SENSORS {
        reg.register(format!("s{i}"), fixtures::temperature_sensor(i as u64));
        let sep = if i + 1 < SENSORS { "," } else { ";" };
        inserts.push_str(&format!("('s{i}', 'room{i}'){sep}\n"));
    }
    pems.run_program(&format!(
        "PROTOTYPE getTemperature( ) : ( temperature REAL );
         EXTENDED RELATION sensors (
           sensor SERVICE, location STRING, temperature REAL VIRTUAL
         ) USING BINDING PATTERNS ( getTemperature[sensor] );
         INSERT INTO sensors VALUES {inserts}"
    ))
    .expect("setup program");
    let schema = serena_core::schema::XSchema::builder()
        .real("location", serena_core::value::DataType::Str)
        .real("temperature", serena_core::value::DataType::Real)
        .build()
        .expect("readings schema");
    pems.tables_mut()
        .define_stream_with("readings", schema, || {
            Box::new(serena_stream::FnStream(|at: Instant| {
                let t = at.ticks();
                (0..ROWS_PER_TICK)
                    .map(|i| {
                        serena_core::tuple![format!("room{i}"), 10.0 + ((t + i as u64) % 17) as f64]
                    })
                    .collect()
            }))
        })
        .expect("readings stream");
    pems.register_query(
        "hot",
        &serena_stream::StreamPlan::source("readings").window(WINDOW),
    )
    .expect("hot query");
    pems.register_query(
        "temps",
        &serena_stream::StreamPlan::source("sensors").invoke("getTemperature", "sensor"),
    )
    .expect("temps query");
    pems.register_query(
        "sampled",
        &serena_stream::StreamPlan::source("sensors").sample_invoke("getTemperature", "sensor", 1),
    )
    .expect("sampled query");
    // fill the window ring and warm the β cache
    pems.run_ticks(WINDOW + 8);
    pems
}

fn bench_checkpoint_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_overhead");
    group.throughput(Throughput::Elements(ROWS_PER_TICK as u64));

    let mut ticking = steady_pems();
    group.bench_with_input(BenchmarkId::new("tick", "plain"), &(), |b, ()| {
        b.iter(|| ticking.tick())
    });

    let frozen = steady_pems();
    group.bench_with_input(BenchmarkId::new("checkpoint", "encode"), &(), |b, ()| {
        b.iter(|| frozen.snapshot_bytes())
    });

    let dir = std::env::temp_dir().join(format!("serena-bench-ckpt-{}", std::process::id()));
    let mut rm = RecoveryManager::new(&dir, 1);
    let bytes = frozen.snapshot_bytes();
    group.bench_with_input(BenchmarkId::new("checkpoint", "write"), &(), |b, ()| {
        b.iter(|| rm.write(&bytes).expect("checkpoint write"))
    });
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

criterion_group!(benches, bench_checkpoint_overhead);

fn find<'a>(records: &'a [BenchRecord], label: &str) -> &'a BenchRecord {
    records
        .iter()
        .find(|r| r.label == label)
        .unwrap_or_else(|| panic!("missing record {label}"))
}

/// The headline number: snapshot-encode cost as a percentage of tick cost,
/// from interleaved batches (robust against clock/allocator drift), taken
/// as the median of paired per-round ratios.
fn interleaved_overhead_pct() -> (f64, f64, f64) {
    const ROUNDS: usize = 60;
    const PASSES: usize = 5;
    let mut pems = steady_pems();
    for _ in 0..PASSES * 4 {
        pems.tick();
        let _ = pems.snapshot_bytes();
    }
    let mut ratios = Vec::with_capacity(ROUNDS);
    let mut tick_rounds = Vec::with_capacity(ROUNDS);
    let mut snap_rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let start = std::time::Instant::now();
        for _ in 0..PASSES {
            pems.tick();
        }
        let tick_ns = start.elapsed().as_nanos() as f64;
        let start = std::time::Instant::now();
        for _ in 0..PASSES {
            let _ = pems.snapshot_bytes();
        }
        let snap_ns = start.elapsed().as_nanos() as f64;
        ratios.push(snap_ns / tick_ns);
        tick_rounds.push(tick_ns / PASSES as f64);
        snap_rounds.push(snap_ns / PASSES as f64);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    (
        median(&mut ratios) * 100.0,
        median(&mut tick_rounds),
        median(&mut snap_rounds),
    )
}

fn main() {
    benches();
    let records = take_records();

    let tick = find(&records, "checkpoint_overhead/tick/plain");
    let encode = find(&records, "checkpoint_overhead/checkpoint/encode");
    let sequential_pct = encode.mean_ns as f64 / tick.mean_ns.max(1) as f64 * 100.0;
    let (overhead_pct, tick_ns, snap_ns) = interleaved_overhead_pct();
    let snapshot_len = steady_pems().snapshot_bytes().len();
    println!(
        "checkpoint encode vs tick (window={WINDOW}, {ROWS_PER_TICK} rows/tick, \
         {SENSORS} sensors): {overhead_pct:.2}% interleaved \
         ({tick_ns:.0} ns tick, {snap_ns:.0} ns snapshot, {snapshot_len} bytes; \
         sequential: {sequential_pct:.2}%)"
    );

    // sanity: the snapshot really is a valid recovery point
    let frozen = steady_pems();
    let bytes = frozen.snapshot_bytes();
    let mut recovered = steady_pems();
    recovered
        .restore_bytes(&bytes)
        .expect("bench snapshot restores");
    assert_eq!(recovered.clock(), frozen.clock());

    let mut json = String::from("{\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}}}{sep}\n",
            r.label, r.mean_ns, r.best_ns
        ));
    }
    json.push_str("  ]");
    json.push_str(&format!(",\n  \"overhead_pct\": {overhead_pct:.3}"));
    json.push_str(&format!(
        ",\n  \"tick_ns_per_pass\": {tick_ns:.0},\n  \"snapshot_ns_per_pass\": {snap_ns:.0}"
    ));
    json.push_str(&format!(
        ",\n  \"snapshot_bytes\": {snapshot_len},\n  \"window\": {WINDOW},\n  \
         \"rows_per_tick\": {ROWS_PER_TICK},\n  \"sensors\": {SENSORS}\n}}\n"
    ));

    let path =
        std::env::var("SERENA_BENCH_OUT").unwrap_or_else(|_| "BENCH_recovery.json".to_string());
    std::fs::write(&path, json).expect("write bench results");
    println!("wrote {path}");

    if let Ok(bound) = std::env::var("SERENA_BENCH_ASSERT_OVERHEAD_PCT") {
        let bound: f64 = bound.parse().expect("numeric overhead bound");
        if overhead_pct > bound {
            eprintln!("checkpoint overhead {overhead_pct:.2}% exceeds bound {bound}%");
            std::process::exit(1);
        }
        println!("overhead within {bound}% bound");
    }
}
