//! Resilience-layer overhead: the same β-heavy plan executed through a
//! bare invoker vs the full resilience stack (retry budget + deadline
//! accounting + circuit breaker) with *no faults injected* — the price
//! paid on the happy path.
//!
//! ```sh
//! cargo bench -p serena-bench --bench resilience_overhead
//! ```
//!
//! Writes `BENCH_resilience.json` (override with `SERENA_BENCH_OUT`). When
//! `SERENA_BENCH_ASSERT_OVERHEAD_PCT` is set (CI smoke), the process exits
//! nonzero if the measured relative overhead exceeds that bound.

use std::sync::Arc;
use std::time::Duration;

use serena_bench::criterion_group;
use serena_bench::harness::{take_records, BenchRecord, BenchmarkId, Criterion, Throughput};
use serena_bench::workload;

use serena_core::exec::ExecContext;
use serena_core::plan::Plan;
use serena_core::service::Invoker;
use serena_core::time::Instant;
use serena_services::resilience::{ResiliencePolicy, ResilienceState, ResilientInvoker};

/// Sensors invoked per pass: every row is a live β call (the one-shot
/// operator does not cache), so the denominator is pure invocation work.
const SENSORS: usize = 200;

/// The gated configuration: the documented recommended policy — retry
/// budget + circuit breaker armed, no deadline.
fn active_policy() -> ResiliencePolicy {
    ResiliencePolicy::standard()
}

/// Informational variant: same policy with a per-call deadline armed, which
/// adds two wall-clock reads per invocation.
fn deadline_policy() -> ResiliencePolicy {
    ResiliencePolicy::standard().with_deadline(Duration::from_secs(1))
}

fn beta_plan() -> Plan {
    Plan::relation("sensors").invoke("getTemperature", "sensor")
}

/// The identical β fan-out through the bare registry vs the no-fault
/// resilient stack.
fn bench_resilience_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("resilience_overhead");
    let env = workload::scaled_environment(SENSORS, 0, 0);
    let reg = workload::scaled_registry(SENSORS, 0);
    let plan = beta_plan();
    group.throughput(Throughput::Elements(SENSORS as u64));

    let ctx = ExecContext::new(&env, &reg, Instant(1));
    // warm caches/allocator before the first measured group, so ordering
    // does not bias the comparison
    let warmup = std::time::Instant::now();
    while warmup.elapsed() < std::time::Duration::from_millis(200) {
        ctx.execute(&plan).unwrap();
    }
    group.bench_with_input(BenchmarkId::new("invoker", "bare"), &plan, |b, p| {
        b.iter(|| ctx.execute(p).unwrap())
    });

    let resilient =
        ResilientInvoker::with_state(&reg, active_policy(), Arc::new(ResilienceState::new()));
    let ctx = ExecContext::new(&env, &resilient, Instant(1));
    group.bench_with_input(BenchmarkId::new("invoker", "resilient"), &plan, |b, p| {
        b.iter(|| ctx.execute(p).unwrap())
    });

    let with_deadline =
        ResilientInvoker::with_state(&reg, deadline_policy(), Arc::new(ResilienceState::new()));
    let ctx = ExecContext::new(&env, &with_deadline, Instant(1));
    group.bench_with_input(BenchmarkId::new("invoker", "deadline"), &plan, |b, p| {
        b.iter(|| ctx.execute(p).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_resilience_overhead);

fn find<'a>(records: &'a [BenchRecord], label: &str) -> &'a BenchRecord {
    records
        .iter()
        .find(|r| r.label == label)
        .unwrap_or_else(|| panic!("missing record {label}"))
}

/// The headline overhead number. Sequential A-then-B benchmarking is biased
/// by clock/allocator drift, so this interleaves short batches of both
/// variants and takes the median of paired per-round ratios.
fn interleaved_overhead_pct() -> (f64, f64, f64) {
    const ROUNDS: usize = 100;
    const PASSES: usize = 10;
    let env = workload::scaled_environment(SENSORS, 0, 0);
    let reg = workload::scaled_registry(SENSORS, 0);
    let plan = beta_plan();
    let ctx_bare = ExecContext::new(&env, &reg, Instant(1));
    let resilient =
        ResilientInvoker::with_state(&reg, active_policy(), Arc::new(ResilienceState::new()));
    let ctx_resilient = ExecContext::new(&env, &resilient, Instant(1));

    for _ in 0..PASSES * 4 {
        ctx_bare.execute(&plan).unwrap();
        ctx_resilient.execute(&plan).unwrap();
    }
    let mut ratios = Vec::with_capacity(ROUNDS);
    let mut bare_rounds = Vec::with_capacity(ROUNDS);
    let mut resilient_rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let start = std::time::Instant::now();
        for _ in 0..PASSES {
            ctx_bare.execute(&plan).unwrap();
        }
        let bare_ns = start.elapsed().as_nanos() as f64;
        let start = std::time::Instant::now();
        for _ in 0..PASSES {
            ctx_resilient.execute(&plan).unwrap();
        }
        let resilient_ns = start.elapsed().as_nanos() as f64;
        ratios.push(resilient_ns / bare_ns);
        bare_rounds.push(bare_ns / PASSES as f64);
        resilient_rounds.push(resilient_ns / PASSES as f64);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    (
        (median(&mut ratios) - 1.0) * 100.0,
        median(&mut bare_rounds),
        median(&mut resilient_rounds),
    )
}

fn main() {
    benches();
    let records = take_records();

    let bare = find(&records, "resilience_overhead/invoker/bare");
    let resilient = find(&records, "resilience_overhead/invoker/resilient");
    let sequential_pct =
        (resilient.mean_ns as f64 - bare.mean_ns as f64) / bare.mean_ns.max(1) as f64 * 100.0;
    let (overhead_pct, bare_ns, resilient_ns) = interleaved_overhead_pct();
    println!(
        "resilience stack overhead vs bare invoker (no faults): {overhead_pct:.2}% interleaved \
         ({bare_ns:.0} ns → {resilient_ns:.0} ns/pass; sequential: {sequential_pct:.2}%)"
    );

    // sanity: the resilient pass really ran with an armed policy; the
    // happy path must never retry or trip a breaker
    let reg = workload::scaled_registry(4, 0);
    let state = Arc::new(ResilienceState::new());
    let inv = ResilientInvoker::with_state(&reg, active_policy(), Arc::clone(&state));
    let sref = serena_core::value::ServiceRef::new("s0");
    inv.invoke(
        &serena_core::prototype::examples::get_temperature(),
        &sref,
        &serena_core::tuple::Tuple::empty(),
        Instant(1),
    )
    .unwrap();
    let counters = state.counters();
    assert_eq!((counters.retries, counters.rejected), (0, 0));

    let mut json = String::from("{\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}}}{sep}\n",
            r.label, r.mean_ns, r.best_ns
        ));
    }
    json.push_str("  ]");
    json.push_str(&format!(",\n  \"overhead_pct\": {overhead_pct:.3}"));
    json.push_str(&format!(
        ",\n  \"bare_ns_per_pass\": {bare_ns:.0},\n  \"resilient_ns_per_pass\": {resilient_ns:.0}"
    ));
    json.push_str(&format!(",\n  \"sensors\": {SENSORS}\n}}\n"));

    let path =
        std::env::var("SERENA_BENCH_OUT").unwrap_or_else(|_| "BENCH_resilience.json".to_string());
    std::fs::write(&path, json).expect("write bench results");
    println!("wrote {path}");

    if let Ok(bound) = std::env::var("SERENA_BENCH_ASSERT_OVERHEAD_PCT") {
        let bound: f64 = bound.parse().expect("numeric overhead bound");
        if overhead_pct > bound {
            eprintln!("resilience overhead {overhead_pct:.2}% exceeds bound {bound}%");
            std::process::exit(1);
        }
        println!("overhead within {bound}% bound");
    }
}
