//! E13 — telemetry overhead: the same physical pipeline executed with a
//! [`NoopMetrics`] sink vs the full [`MetricsRegistry`]-backed
//! [`RegistrySink`], plus log-linear histogram accuracy against exact
//! quantiles.
//!
//! ```sh
//! cargo bench -p serena-bench --bench telemetry_overhead
//! ```
//!
//! Writes `BENCH_telemetry.json` (override with `SERENA_BENCH_OUT`). When
//! `SERENA_BENCH_ASSERT_OVERHEAD_PCT` is set (CI smoke), the process exits
//! nonzero if the measured relative overhead exceeds that bound.

use serena_bench::criterion_group;
use serena_bench::harness::{take_records, BenchRecord, BenchmarkId, Criterion, Throughput};
use serena_bench::workload;

use serena_core::exec::ExecContext;
use serena_core::formula::Formula;
use serena_core::metrics::NoopMetrics;
use serena_core::physical::PhysicalPlan;
use serena_core::plan::Plan;
use serena_core::telemetry::{Histogram, MetricsRegistry, RegistrySink};
use serena_core::time::Instant;

/// Rows in the sensors table: enough real per-pass work that sink overhead
/// is measured against a realistic denominator, small enough to iterate.
const ROWS: usize = 1_000;
/// Histogram-accuracy sample count (deterministic LCG-style sequence).
const SAMPLES: usize = 100_000;

fn pipeline() -> Plan {
    Plan::relation("sensors")
        .select(Formula::eq_const("location", "office"))
        .project(["location"])
}

/// The identical compiled plan under both sinks. Per-pass work dominates;
/// the sink sees one record per operator per pass.
fn bench_sink_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    let env = workload::scaled_environment(ROWS, 0, 0);
    let reg = workload::scaled_registry(0, 0);
    let plan = pipeline();
    let physical = PhysicalPlan::compile(&plan, &env).unwrap();
    group.throughput(Throughput::Elements(ROWS as u64));

    let noop = NoopMetrics;
    let ctx = ExecContext::with_metrics(&env, &reg, Instant(1), &noop);
    // warm caches/allocator before the first measured group, so ordering
    // does not bias the comparison
    let warmup = std::time::Instant::now();
    while warmup.elapsed() < std::time::Duration::from_millis(200) {
        physical.execute(&ctx).unwrap();
    }
    group.bench_with_input(BenchmarkId::new("sink", "noop"), &physical, |b, p| {
        b.iter(|| p.execute(&ctx).unwrap())
    });

    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let sink = RegistrySink::new(&registry);
    let ctx = ExecContext::with_metrics(&env, &reg, Instant(1), &sink);
    group.bench_with_input(BenchmarkId::new("sink", "registry"), &physical, |b, p| {
        b.iter(|| p.execute(&ctx).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sink_overhead);

fn find<'a>(records: &'a [BenchRecord], label: &str) -> &'a BenchRecord {
    records
        .iter()
        .find(|r| r.label == label)
        .unwrap_or_else(|| panic!("missing record {label}"))
}

/// The headline overhead number. Sequential A-then-B benchmarking is biased
/// by clock/allocator drift (B reliably measures faster than A on shared
/// machines, whichever sink B is), so this interleaves short batches of
/// both variants and compares the accumulated totals.
fn interleaved_overhead_pct() -> (f64, f64, f64) {
    const ROUNDS: usize = 100;
    const PASSES: usize = 10;
    let env = workload::scaled_environment(ROWS, 0, 0);
    let reg = workload::scaled_registry(0, 0);
    let physical = PhysicalPlan::compile(&pipeline(), &env).unwrap();
    let noop = NoopMetrics;
    let ctx_noop = ExecContext::with_metrics(&env, &reg, Instant(1), &noop);
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let sink = RegistrySink::new(&registry);
    let ctx_registry = ExecContext::with_metrics(&env, &reg, Instant(1), &sink);

    for _ in 0..PASSES * 4 {
        physical.execute(&ctx_noop).unwrap();
        physical.execute(&ctx_registry).unwrap();
    }
    // paired per-round ratios; the median is immune to the load spikes a
    // mean-of-totals comparison absorbs wholesale
    let mut ratios = Vec::with_capacity(ROUNDS);
    let mut noop_rounds = Vec::with_capacity(ROUNDS);
    let mut registry_rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let start = std::time::Instant::now();
        for _ in 0..PASSES {
            physical.execute(&ctx_noop).unwrap();
        }
        let noop_ns = start.elapsed().as_nanos() as f64;
        let start = std::time::Instant::now();
        for _ in 0..PASSES {
            physical.execute(&ctx_registry).unwrap();
        }
        let registry_ns = start.elapsed().as_nanos() as f64;
        ratios.push(registry_ns / noop_ns);
        noop_rounds.push(noop_ns / PASSES as f64);
        registry_rounds.push(registry_ns / PASSES as f64);
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    (
        (median(&mut ratios) - 1.0) * 100.0,
        median(&mut noop_rounds),
        median(&mut registry_rounds),
    )
}

/// Worst relative error of the histogram's p50/p90/p99 against the exact
/// quantiles of the same samples. The log-linear layout guarantees ≤ 1/8.
fn histogram_accuracy() -> (f64, [(u64, u64); 3]) {
    let h = Histogram::new();
    let mut samples: Vec<u64> = (0..SAMPLES as u64)
        .map(|i| (i.wrapping_mul(2_654_435_761) % 1_000_000) + 1)
        .collect();
    for &s in &samples {
        h.record(s);
    }
    samples.sort_unstable();
    let exact = |q: f64| samples[((q * SAMPLES as f64).ceil() as usize).max(1) - 1];
    let mut worst = 0.0f64;
    let mut pairs = [(0u64, 0u64); 3];
    for (i, q) in [0.5, 0.9, 0.99].into_iter().enumerate() {
        let estimated = h.quantile(q);
        let truth = exact(q);
        pairs[i] = (truth, estimated);
        worst = worst.max((estimated as f64 - truth as f64).abs() / truth as f64);
    }
    (worst, pairs)
}

fn main() {
    benches();
    let records = take_records();

    let noop = find(&records, "telemetry_overhead/sink/noop");
    let instrumented = find(&records, "telemetry_overhead/sink/registry");
    let sequential_pct =
        (instrumented.mean_ns as f64 - noop.mean_ns as f64) / noop.mean_ns.max(1) as f64 * 100.0;
    let (overhead_pct, noop_ns, registry_ns) = interleaved_overhead_pct();
    println!(
        "telemetry sink overhead vs NoopMetrics: {overhead_pct:.2}% interleaved \
         ({noop_ns:.0} ns → {registry_ns:.0} ns/pass; sequential: {sequential_pct:.2}%)"
    );

    let (worst_err, quantiles) = histogram_accuracy();
    println!("histogram worst quantile error (p50/p90/p99): {worst_err:.4}");

    let mut json = String::from("{\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}}}{sep}\n",
            r.label, r.mean_ns, r.best_ns
        ));
    }
    json.push_str("  ]");
    json.push_str(&format!(",\n  \"overhead_pct\": {overhead_pct:.3}"));
    json.push_str(&format!(
        ",\n  \"noop_ns_per_pass\": {noop_ns:.0},\n  \"registry_ns_per_pass\": {registry_ns:.0}"
    ));
    json.push_str(&format!(
        ",\n  \"histogram_worst_quantile_error\": {worst_err:.5}"
    ));
    for (i, q) in ["p50", "p90", "p99"].iter().enumerate() {
        json.push_str(&format!(
            ",\n  \"{q}_exact\": {}, \"{q}_estimated\": {}",
            quantiles[i].0, quantiles[i].1
        ));
    }
    json.push_str(&format!(
        ",\n  \"rows\": {ROWS}, \"samples\": {SAMPLES}\n}}\n"
    ));

    let path =
        std::env::var("SERENA_BENCH_OUT").unwrap_or_else(|_| "BENCH_telemetry.json".to_string());
    std::fs::write(&path, json).expect("write bench results");
    println!("wrote {path}");

    if let Ok(bound) = std::env::var("SERENA_BENCH_ASSERT_OVERHEAD_PCT") {
        let bound: f64 = bound.parse().expect("numeric overhead bound");
        if overhead_pct > bound {
            eprintln!("telemetry overhead {overhead_pct:.2}% exceeds bound {bound}%");
            std::process::exit(1);
        }
        println!("overhead within {bound}% bound");
    }
    // histogram layout promises ≤ 1/8 relative error; fail loudly if not
    assert!(worst_err <= 0.125, "histogram error {worst_err} > 0.125");
}
