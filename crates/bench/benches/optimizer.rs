//! E9 (criterion half) — end-to-end latency of the Q2 family, naive vs
//! optimized, and the optimizer's own rewrite latency.
//!
//! ```sh
//! cargo bench -p serena-bench --bench optimizer
//! ```

use serena_bench::harness::{BenchmarkId, Criterion};
use serena_bench::{criterion_group, criterion_main};

use serena_bench::workload;
use serena_core::exec::ExecContext;
use serena_core::rewrite::optimize;
use serena_core::time::Instant;

fn bench_q2_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("q2_naive_vs_optimized");
    group.sample_size(30);
    for n in [10usize, 100, 1_000] {
        let env = workload::scaled_environment(0, n, 0);
        let reg = workload::scaled_registry(0, n);
        let naive = workload::q2_family(false, 5);
        let optimized = optimize(&naive, &env).plan;

        group.bench_with_input(BenchmarkId::new("naive", n), &naive, |b, plan| {
            b.iter(|| {
                ExecContext::new(&env, &reg, Instant(1))
                    .execute(plan)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("optimized", n), &optimized, |b, plan| {
            b.iter(|| {
                ExecContext::new(&env, &reg, Instant(1))
                    .execute(plan)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_optimize_latency(c: &mut Criterion) {
    let env = workload::scaled_environment(10, 10, 10);
    let plan = workload::q2_family(false, 5);
    c.bench_function("optimize_q2_prime", |b| b.iter(|| optimize(&plan, &env)));
    // a deeper plan: joins + renames + stacked selections
    let deep = serena_core::plan::Plan::relation("sensors")
        .join(serena_core::plan::Plan::relation("contacts").project(["name", "address"]))
        .rename("location", "place")
        .select(
            serena_core::formula::Formula::eq_const("place", "office")
                .and(serena_core::formula::Formula::ne_const("name", "contact0"))
                .and(serena_core::formula::Formula::eq_const("sensor", "s1")),
        )
        .invoke("getTemperature", "sensor")
        .select(serena_core::formula::Formula::gt_const("temperature", 20.0));
    c.bench_function("optimize_deep_plan", |b| b.iter(|| optimize(&deep, &env)));
}

criterion_group!(benches, bench_q2_family, bench_optimize_latency);
criterion_main!(benches);
