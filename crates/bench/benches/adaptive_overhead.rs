//! Adaptive re-optimization: what the armed-but-idle control loop costs,
//! and what a triggered replan buys (E20).
//!
//! Two questions, one binary:
//!
//! 1. **Overhead** — the same healthy workload ticked through a plain
//!    runtime vs one with `PemsBuilder::adaptive` armed. No trigger ever
//!    fires, so the difference is the pure per-tick price of the control
//!    loop (breaker-edge scan + health scan). Gated in CI below 5%.
//! 2. **Payoff (E20)** — the naive corridor-watch query under a sensor
//!    outage: the static runtime keeps sampling all four sensors, the
//!    adaptive one replans onto the pushed-down shape after the breakers
//!    trip and performs strictly fewer live invocations.
//!
//! ```sh
//! cargo bench -p serena-bench --bench adaptive_overhead
//! ```
//!
//! Writes `BENCH_adaptive.json` (override with `SERENA_BENCH_OUT`). When
//! `SERENA_BENCH_ASSERT_OVERHEAD_PCT` is set (CI smoke), the process exits
//! nonzero if the armed-but-idle overhead exceeds that bound.

use serena_bench::criterion_group;
use serena_bench::harness::{take_records, BenchRecord, BenchmarkId, Criterion, Throughput};

use serena_core::prelude::{DegradePolicy, ExecOptions, Formula, Instant};
use serena_core::service::fixtures;
use serena_pems::{Pems, ReplanPolicy};
use serena_services::bus::BusConfig;
use serena_services::faults::{FaultPolicy, FaultyService};
use serena_services::resilience::ResiliencePolicy;
use serena_stream::plan::StreamPlan;

const SENSOR_DDL: &str = "
    PROTOTYPE getTemperature( ) : ( temperature REAL );
    EXTENDED RELATION sensors (
      sensor SERVICE, location STRING, temperature REAL VIRTUAL
    ) USING BINDING PATTERNS ( getTemperature[sensor] );
    INSERT INTO sensors VALUES
      ('sensor01', 'corridor'), ('sensor06', 'office'),
      ('sensor07', 'roof'), ('sensor22', 'kitchen');
";

/// E20's query in its naive shape: sample every sensor, then filter.
fn naive_plan() -> StreamPlan {
    StreamPlan::source("sensors")
        .sample_invoke("getTemperature", "sensor", 1)
        .window(1)
        .select(Formula::eq_const("location", "corridor"))
}

fn build_pems(adaptive: bool, outage: Option<(u64, u64)>) -> Pems {
    let mut builder = Pems::builder()
        .bus(BusConfig::instant())
        .resilience(ResiliencePolicy::disabled().with_breaker(3, 8))
        .exec_options(ExecOptions::default().with_degrade(DegradePolicy::DropTuple));
    if adaptive {
        builder = builder.adaptive(ReplanPolicy::default());
    }
    let mut pems = builder.build();
    let reg = pems.directory();
    for (name, seed) in [
        ("sensor01", 1u64),
        ("sensor06", 6),
        ("sensor07", 7),
        ("sensor22", 22),
    ] {
        let svc = fixtures::temperature_sensor(seed);
        match outage {
            Some((from, to)) => reg.register(
                name,
                FaultyService::new(
                    svc,
                    FaultPolicy::Outage {
                        from: Instant(from),
                        to: Instant(to),
                    },
                ),
            ),
            None => reg.register(name, svc),
        }
    }
    pems.run_program(SENSOR_DDL).expect("sensor DDL");
    pems.register_query("watch", &naive_plan()).expect("watch");
    pems
}

/// Per-tick cost of the armed-but-idle control loop vs a plain runtime.
fn bench_adaptive_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_overhead");
    group.throughput(Throughput::Elements(4));

    let mut plain = build_pems(false, None);
    group.bench_with_input(BenchmarkId::new("tick", "plain"), &(), |b, ()| {
        b.iter(|| plain.tick())
    });

    let mut armed = build_pems(true, None);
    group.bench_with_input(BenchmarkId::new("tick", "armed"), &(), |b, ()| {
        b.iter(|| armed.tick())
    });
    assert!(
        armed.replan_history().is_empty(),
        "a healthy run must never trigger a replan"
    );
    group.finish();
}

criterion_group!(benches, bench_adaptive_overhead);

fn find<'a>(records: &'a [BenchRecord], label: &str) -> &'a BenchRecord {
    records
        .iter()
        .find(|r| r.label == label)
        .unwrap_or_else(|| panic!("missing record {label}"))
}

/// The headline overhead number. Sequential A-then-B benchmarking is biased
/// by clock/allocator drift, so this interleaves short batches of both
/// variants and takes the median of paired per-round ratios.
fn interleaved_overhead_pct() -> (f64, f64, f64) {
    const ROUNDS: usize = 80;
    const TICKS: usize = 10;
    let mut plain = build_pems(false, None);
    let mut armed = build_pems(true, None);
    for _ in 0..TICKS * 4 {
        plain.tick();
        armed.tick();
    }
    let mut ratios = Vec::with_capacity(ROUNDS);
    let mut plain_rounds = Vec::with_capacity(ROUNDS);
    let mut armed_rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let start = std::time::Instant::now();
        for _ in 0..TICKS {
            plain.tick();
        }
        let plain_ns = start.elapsed().as_nanos() as f64;
        let start = std::time::Instant::now();
        for _ in 0..TICKS {
            armed.tick();
        }
        let armed_ns = start.elapsed().as_nanos() as f64;
        ratios.push(armed_ns / plain_ns);
        plain_rounds.push(plain_ns / TICKS as f64);
        armed_rounds.push(armed_ns / TICKS as f64);
    }
    assert!(
        armed.replan_history().is_empty(),
        "idle loop must stay idle"
    );
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    (
        (median(&mut ratios) - 1.0) * 100.0,
        median(&mut plain_rounds),
        median(&mut armed_rounds),
    )
}

/// E20 end to end: replans observed, live invocations static vs adaptive.
fn e20_payoff() -> (usize, u64, u64) {
    const TICKS: usize = 60;
    let run = |adaptive: bool| {
        let mut pems = build_pems(adaptive, Some((5, 40)));
        for _ in 0..TICKS {
            pems.tick();
        }
        let invocations = pems
            .processor()
            .stats("watch")
            .expect("registered")
            .invocations;
        (pems.replan_history().len(), invocations)
    };
    let (static_replans, static_invocations) = run(false);
    assert_eq!(static_replans, 0);
    let (replans, adaptive_invocations) = run(true);
    assert!(replans >= 1, "the outage must trigger a replan");
    assert!(
        adaptive_invocations < static_invocations,
        "adaptive ({adaptive_invocations}) must invoke less than static ({static_invocations})"
    );
    (replans, static_invocations, adaptive_invocations)
}

fn main() {
    benches();
    let records = take_records();

    let plain = find(&records, "adaptive_overhead/tick/plain");
    let armed = find(&records, "adaptive_overhead/tick/armed");
    let sequential_pct =
        (armed.mean_ns as f64 - plain.mean_ns as f64) / plain.mean_ns.max(1) as f64 * 100.0;
    let (overhead_pct, plain_ns, armed_ns) = interleaved_overhead_pct();
    println!(
        "adaptive control loop overhead vs plain runtime (no replan): {overhead_pct:.2}% \
         interleaved ({plain_ns:.0} ns → {armed_ns:.0} ns/tick; sequential: {sequential_pct:.2}%)"
    );

    let (replans, static_invocations, adaptive_invocations) = e20_payoff();
    let saved_pct =
        (static_invocations - adaptive_invocations) as f64 / static_invocations as f64 * 100.0;
    println!(
        "E20 under a sensor outage: {replans} replan(s); live invocations \
         {static_invocations} static → {adaptive_invocations} adaptive (−{saved_pct:.1}%)"
    );

    let mut json = String::from("{\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}}}{sep}\n",
            r.label, r.mean_ns, r.best_ns
        ));
    }
    json.push_str("  ]");
    json.push_str(&format!(",\n  \"overhead_pct\": {overhead_pct:.3}"));
    json.push_str(&format!(
        ",\n  \"plain_ns_per_tick\": {plain_ns:.0},\n  \"armed_ns_per_tick\": {armed_ns:.0}"
    ));
    json.push_str(&format!(
        ",\n  \"e20\": {{\"replans\": {replans}, \"static_invocations\": {static_invocations}, \
         \"adaptive_invocations\": {adaptive_invocations}, \"saved_pct\": {saved_pct:.1}}}\n}}\n"
    ));

    let path =
        std::env::var("SERENA_BENCH_OUT").unwrap_or_else(|_| "BENCH_adaptive.json".to_string());
    std::fs::write(&path, json).expect("write bench results");
    println!("wrote {path}");

    if let Ok(bound) = std::env::var("SERENA_BENCH_ASSERT_OVERHEAD_PCT") {
        let bound: f64 = bound.parse().expect("numeric overhead bound");
        if overhead_pct > bound {
            eprintln!("adaptive overhead {overhead_pct:.2}% exceeds bound {bound}%");
            std::process::exit(1);
        }
        println!("overhead within {bound}% bound");
    }
}
