//! E12 — physical-plan execution: compile-once vs recompile-per-call, and
//! serial vs parallel β under slow services.
//!
//! ```sh
//! cargo bench -p serena-bench --bench operators_physical
//! ```
//!
//! Besides the usual printed report, this harness writes every measurement
//! (plus the parallel-β speedup factors) to `BENCH_physical.json` in the
//! invoking directory — override the path with `SERENA_BENCH_OUT`.

use std::time::Duration;

use serena_bench::criterion_group;
use serena_bench::harness::{take_records, BenchRecord, BenchmarkId, Criterion, Throughput};
use serena_bench::workload;

use serena_core::exec::ExecContext;
use serena_core::formula::Formula;
use serena_core::physical::{ExecOptions, PhysicalPlan};
use serena_core::plan::Plan;
use serena_core::time::Instant;
use serena_services::faults::SlowInvoker;

/// How slow each simulated device answers in the parallel-β comparison.
const SLOW_CALL: Duration = Duration::from_millis(5);
/// Rows in the slow-device relation: 16 × 5 ms ≈ 80 ms serial per pass.
const SLOW_ROWS: usize = 16;

/// A service-free pipeline where per-call overhead is pure plan work:
/// σ → π over the scaled sensors table.
fn passive_plan() -> Plan {
    Plan::relation("sensors")
        .select(Formula::eq_const("location", "office"))
        .project(["location"])
}

/// Compiling once and re-executing vs the convenience wrapper that
/// recompiles the logical plan on every call.
fn bench_compile_once_vs_recompile(c: &mut Criterion) {
    let mut group = c.benchmark_group("physical_compile");
    for n in [100usize, 1_000, 10_000] {
        let env = workload::scaled_environment(n, 0, 0);
        let reg = workload::scaled_registry(0, 0);
        let plan = passive_plan();
        let ctx = ExecContext::new(&env, &reg, Instant(1));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("compile_once", n), &plan, |b, plan| {
            let physical = PhysicalPlan::compile(plan, &env).unwrap();
            b.iter(|| physical.execute(&ctx).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("recompile_each", n), &plan, |b, plan| {
            b.iter(|| ctx.execute(plan).unwrap())
        });
    }
    group.finish();
}

/// β over slow devices: one worker vs a bounded pool. Output is
/// byte-identical either way; only the wall clock differs.
fn bench_invoke_parallelism(c: &mut Criterion) {
    let mut group = c.benchmark_group("physical_invoke_parallel");
    let env = workload::scaled_environment(SLOW_ROWS, 0, 0);
    let slow = SlowInvoker::new(workload::scaled_registry(SLOW_ROWS, 0), SLOW_CALL);
    let plan = Plan::relation("sensors").invoke("getTemperature", "sensor");
    let physical = PhysicalPlan::compile(&plan, &env).unwrap();
    group.throughput(Throughput::Elements(SLOW_ROWS as u64));
    for workers in [1usize, 2, 8] {
        let ctx =
            ExecContext::new(&env, &slow, Instant(1)).with_options(ExecOptions::parallel(workers));
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &physical,
            |b, physical| b.iter(|| physical.execute(&ctx).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_compile_once_vs_recompile,
    bench_invoke_parallelism
);

fn mean_of<'a>(records: &'a [BenchRecord], label: &str) -> Option<&'a BenchRecord> {
    records.iter().find(|r| r.label == label)
}

fn main() {
    benches();
    let records = take_records();

    // Hand-rolled JSON (the workspace is dependency-free): one entry per
    // measurement, plus derived speedups for the parallel-β comparison.
    let mut json = String::from("{\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 < records.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}}}{sep}\n",
            r.label, r.mean_ns, r.best_ns
        ));
    }
    json.push_str("  ]");
    let serial = mean_of(&records, "physical_invoke_parallel/workers/1");
    for workers in [2u32, 8] {
        let parallel = mean_of(
            &records,
            &format!("physical_invoke_parallel/workers/{workers}"),
        );
        if let (Some(s), Some(p)) = (serial, parallel) {
            let speedup = s.mean_ns as f64 / p.mean_ns.max(1) as f64;
            println!("parallel β speedup ({workers} workers vs serial): {speedup:.2}x");
            json.push_str(&format!(",\n  \"speedup_{workers}_workers\": {speedup:.3}"));
        }
    }
    json.push_str(&format!(
        ",\n  \"slow_call_ms\": {},\n  \"slow_rows\": {}\n}}\n",
        SLOW_CALL.as_millis(),
        SLOW_ROWS
    ));

    let path =
        std::env::var("SERENA_BENCH_OUT").unwrap_or_else(|_| "BENCH_physical.json".to_string());
    std::fs::write(&path, json).expect("write bench results");
    println!("wrote {path}");
}
