//! E10 (criterion half) — continuous-engine tick latency: windowed
//! selection, incremental join, and the full surveillance deployment.
//!
//! ```sh
//! cargo bench -p serena-bench --bench continuous
//! ```

use serena_bench::harness::{BenchmarkId, Criterion, Throughput};
use serena_bench::{criterion_group, criterion_main};

use serena_core::formula::Formula;
use serena_core::metrics::NoopMetrics;
use serena_core::schema::XSchema;
use serena_core::service::fixtures::example_registry;
use serena_core::time::Instant;
use serena_core::tuple::Tuple;
use serena_core::value::{DataType, Value};
use serena_pems::scenario::{deploy_surveillance, SurveillanceConfig};
use serena_stream::plan::StreamPlan;
use serena_stream::{ContinuousQuery, FnStream, SourceSet};

fn bench_windowed_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("windowed_select_tick");
    for rate in [10usize, 100, 1_000] {
        // `rate` tuples per tick through W[4] + σ
        group.throughput(Throughput::Elements(rate as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, &rate| {
            let schema = XSchema::builder()
                .real("location", DataType::Str)
                .real("temperature", DataType::Real)
                .build()
                .unwrap();
            let mut sources = SourceSet::new();
            sources.add_stream(
                "temps",
                schema,
                Box::new(FnStream(move |at: Instant| {
                    (0..rate)
                        .map(|i| {
                            Tuple::new(vec![
                                Value::str(format!("area{}", i % 7)),
                                Value::Real(15.0 + ((at.ticks() as usize + i) % 20) as f64),
                            ])
                        })
                        .collect()
                })),
            );
            let plan = StreamPlan::source("temps")
                .window(4)
                .select(Formula::gt_const("temperature", 30.0));
            let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
            let reg = example_registry();
            b.iter(|| q.tick_with(&reg, &NoopMetrics));
        });
    }
    group.finish();
}

fn bench_incremental_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_join_tick");
    for right_size in [10usize, 100, 1_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(right_size),
            &right_size,
            |b, &right_size| {
                let left_schema = XSchema::builder()
                    .real("k", DataType::Int)
                    .real("v", DataType::Real)
                    .build()
                    .unwrap();
                let right_schema = XSchema::builder()
                    .real("k", DataType::Int)
                    .real("w", DataType::Str)
                    .build()
                    .unwrap();
                let mut sources = SourceSet::new();
                // streaming left side: 10 tuples per tick through W[2]
                sources.add_stream(
                    "l",
                    left_schema,
                    Box::new(FnStream(move |at: Instant| {
                        (0..10)
                            .map(|i| {
                                Tuple::new(vec![
                                    Value::Int(((at.ticks() as i64) + i) % right_size as i64),
                                    Value::Real(i as f64),
                                ])
                            })
                            .collect()
                    })),
                );
                let right = serena_stream::TableHandle::with_tuples(
                    right_schema,
                    (0..right_size).map(|i| {
                        Tuple::new(vec![Value::Int(i as i64), Value::str(format!("w{i}"))])
                    }),
                );
                sources.add_table("r", right);
                let plan = StreamPlan::source("l")
                    .window(2)
                    .join(StreamPlan::source("r"));
                let mut q = ContinuousQuery::compile(&plan, &mut sources).unwrap();
                let reg = example_registry();
                b.iter(|| q.tick_with(&reg, &NoopMetrics));
            },
        );
    }
    group.finish();
}

fn bench_surveillance_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("surveillance_tick");
    group.sample_size(20);
    for sensors in [10usize, 50, 200] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sensors),
            &sensors,
            |b, &sensors| {
                let config = SurveillanceConfig {
                    sensors,
                    cameras: 10,
                    contacts: 10,
                    threshold: 22.0, // some alerts fire
                    ..SurveillanceConfig::default()
                };
                let mut s = deploy_surveillance(&config).unwrap();
                s.pems.run_ticks(2); // discovery settles
                b.iter(|| s.pems.tick());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_windowed_select,
    bench_incremental_join,
    bench_surveillance_tick
);
criterion_main!(benches);
