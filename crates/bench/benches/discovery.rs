//! E11 (criterion half) — discovery machinery: registry operations, bus
//! message throughput, discovery-relation refresh cost.
//!
//! ```sh
//! cargo bench -p serena-bench --bench discovery
//! ```

use serena_bench::harness::{BenchmarkId, Criterion, Throughput};
use serena_bench::{criterion_group, criterion_main};

use serena_core::service::{fixtures, Invoker as _};
use serena_core::time::Instant;
use serena_core::value::Value;
use serena_services::bus::{BusConfig, CoreErm, DiscoveryBus, LocalErm};
use serena_services::directory::NodeDirectory;
use serena_services::discovery::DiscoveryQuery;
use serena_services::registry::DynamicRegistry;

fn bench_registry_ops(c: &mut Criterion) {
    c.bench_function("registry_register_unregister", |b| {
        let reg = DynamicRegistry::new();
        let mut i = 0u64;
        b.iter(|| {
            let name = format!("s{i}");
            reg.register(name.clone(), fixtures::temperature_sensor(i));
            reg.unregister(&serena_core::value::ServiceRef::new(&name));
            reg.drain_events();
            i += 1;
        });
    });

    let mut group = c.benchmark_group("providers_of");
    for n in [10usize, 100, 1_000] {
        let reg = DynamicRegistry::new();
        for i in 0..n {
            reg.register(format!("s{i}"), fixtures::temperature_sensor(i as u64));
        }
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &reg, |b, reg| {
            b.iter(|| reg.providers_of("getTemperature"))
        });
    }
    group.finish();
}

fn bench_bus_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("bus_announce_drain");
    for n in [10usize, 100, 1_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let bus = DiscoveryBus::new(BusConfig::instant());
                let lerm = LocalErm::new("L", std::sync::Arc::clone(&bus));
                let core = CoreErm::new(std::sync::Arc::clone(&bus));
                for i in 0..n {
                    lerm.register_service(
                        format!("s{i}"),
                        fixtures::temperature_sensor(i as u64),
                        Instant(0),
                    );
                }
                core.tick(Instant(0))
            });
        });
    }
    group.finish();
}

fn bench_discovery_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery_refresh");
    for n in [10usize, 100, 1_000] {
        let dir = NodeDirectory::new("bench");
        for i in 0..n {
            dir.register(format!("s{i}"), fixtures::temperature_sensor(i as u64));
            dir.set(format!("s{i}"), "location", Value::str("office"));
        }
        let query = DiscoveryQuery::new(
            "getTemperature",
            serena_core::schema::examples::sensors_schema(),
            "sensor",
        )
        .unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| query.refresh_in(&dir))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_registry_ops,
    bench_bus_throughput,
    bench_discovery_refresh
);
criterion_main!(benches);
