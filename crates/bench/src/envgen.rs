//! Massive-scale environment generation and the scale-benchmark driver
//! (the §7 "benchmark for pervasive environments", ROADMAP item 1).
//!
//! Thin orchestration over the public [`EnvSpec`] / [`WorkloadSpec`]
//! builders from `serena-pems`: [`ScaleConfig`] describes a run (device
//! counts, query count, instants — overridable via `SERENA_SCALE_*`
//! environment variables for the CI smoke), [`run_scale`] deploys the
//! fleet, registers the workload, ticks the runtime and reports the
//! objective indicators the paper asks for — tuples/sec, end-to-end p99
//! tick latency (merged from the per-query telemetry histograms), and
//! memory per query (from the snapshot codec).
//!
//! The generated environment is a pure function of the seed: two
//! [`run_scale`] calls with the same [`ScaleConfig`] produce identical
//! tuple counts, query outputs and snapshot bytes (wall-clock fields
//! aside) — see `tests/envgen_determinism.rs`.

use std::time::Duration;

use serena_pems::envspec::{ArrivalTrace, EnvSpec, QueryTemplate, WorkloadSpec};
use serena_pems::pems::Pems;
use serena_pems::scheduler::SchedulerConfig;
use serena_services::fleet::{FailureProfile, LatencyProfile};

/// Parameters of one scale-benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Deterministic seed for the whole environment.
    pub seed: u64,
    /// Temperature sensors in the fleet.
    pub devices: usize,
    /// Cameras in the fleet.
    pub cameras: usize,
    /// Messengers in the fleet (indexed, kinds round-robin).
    pub messengers: usize,
    /// Concurrent continuous queries.
    pub queries: usize,
    /// Logical instants to run.
    pub ticks: u64,
    /// Mean tuple arrivals per instant on the `temperatures` stream.
    pub mean_arrivals: usize,
    /// Scheduler worker-pool width for the multi-query tick rounds
    /// (`0` keeps the runtime's own default — `SERENA_SCHED_WORKERS` or
    /// the machine's available parallelism).
    pub workers: usize,
}

impl Default for ScaleConfig {
    /// The headline configuration: ≥ 10⁴ devices, ≥ 100 concurrent
    /// queries (the ISSUE's acceptance floor), no environment variables
    /// required.
    fn default() -> Self {
        ScaleConfig {
            seed: 42,
            devices: 10_000,
            cameras: 200,
            messengers: 30,
            queries: 120,
            ticks: 20,
            mean_arrivals: 256,
            workers: 0,
        }
    }
}

impl ScaleConfig {
    /// The default configuration with `SERENA_SCALE_{SEED, DEVICES,
    /// CAMERAS, MESSENGERS, QUERIES, TICKS, ARRIVALS, WORKERS}` overrides
    /// applied — how the CI smoke shrinks the run to 2·10³ devices.
    pub fn from_env() -> Self {
        fn read<T: std::str::FromStr>(var: &str, default: T) -> T {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let d = ScaleConfig::default();
        ScaleConfig {
            seed: read("SERENA_SCALE_SEED", d.seed),
            devices: read("SERENA_SCALE_DEVICES", d.devices),
            cameras: read("SERENA_SCALE_CAMERAS", d.cameras),
            messengers: read("SERENA_SCALE_MESSENGERS", d.messengers),
            queries: read("SERENA_SCALE_QUERIES", d.queries),
            ticks: read("SERENA_SCALE_TICKS", d.ticks),
            mean_arrivals: read("SERENA_SCALE_ARRIVALS", d.mean_arrivals),
            workers: read("SERENA_SCALE_WORKERS", d.workers),
        }
    }

    /// This run's configuration with a different scheduler width — the
    /// scaling-curve sweep in `benches/scale.rs`.
    pub fn with_workers(&self, workers: usize) -> Self {
        ScaleConfig { workers, ..*self }
    }

    /// The environment this configuration describes: a zipf-skewed fleet
    /// (failure head rate 20%, latency head 2 ms falling off quadratically)
    /// fed by a trace-driven arrival schedule.
    pub fn spec(&self) -> EnvSpec {
        EnvSpec::new(self.seed)
            .sensors(self.devices)
            .cameras(self.cameras)
            .messengers(serena_pems::envspec::MessengerFleet::Indexed(
                self.messengers,
            ))
            .failures(FailureProfile::new(0.2, 1.0))
            .latencies(LatencyProfile::new(Duration::from_millis(2), 2.0))
            .arrivals(
                ArrivalTrace::new(self.seed)
                    .mean_per_tick(self.mean_arrivals)
                    .activity_exponent(2.0),
            )
    }

    /// The query mix: mostly windowed stream queries over `temperatures`
    /// (hot-area thresholds, per-area watches, recent-location projections)
    /// plus a few inventory and live-sampling (βˢ) queries, scaled
    /// proportionally to [`Self::queries`].
    pub fn workload(&self) -> WorkloadSpec {
        let q = self.queries;
        let inventory = (q / 30).max(1);
        let sampled = (q / 20).max(1);
        let area = q * 30 / 100;
        let recent = q * 25 / 100;
        let hot = q.saturating_sub(area + recent + inventory + sampled).max(1);
        WorkloadSpec::new()
            .queries(
                QueryTemplate::HotAreas {
                    window: 4,
                    threshold: 30.0,
                },
                hot,
            )
            .queries(QueryTemplate::AreaWatch { window: 4 }, area)
            .queries(QueryTemplate::RecentReadings { window: 8 }, recent)
            .queries(QueryTemplate::SensorInventory, inventory)
            .queries(QueryTemplate::SampledTemperatures { every: 2 }, sampled)
    }

    /// Deploy the environment and register the workload — the shared setup
    /// of [`run_scale`] and the per-tick Criterion measurement.
    pub fn deploy(&self) -> (Pems, Vec<String>) {
        let spec = self.spec();
        let (mut pems, _fleet) = spec.build().expect("scale spec deploys");
        if self.workers > 0 {
            pems.set_scheduler(SchedulerConfig::new(self.workers));
        }
        let names = self
            .workload()
            .register_into(&mut pems, &spec)
            .expect("scale workload registers");
        (pems, names)
    }
}

/// Objective indicators of one scale run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleOutcome {
    /// Devices deployed (sensors + cameras + messengers).
    pub devices: usize,
    /// Queries registered.
    pub queries: usize,
    /// Instants run.
    pub ticks: u64,
    /// Tuples ingested across all query subscriptions (trace arrivals ×
    /// stream subscribers + live βˢ invocations).
    pub tuples_in: u64,
    /// Result tuples emitted (inserts + deletes + stream batches).
    pub tuples_out: u64,
    /// Invocation errors survived (injected faults surfacing).
    pub errors: u64,
    /// Wall-clock nanoseconds for the tick loop.
    pub elapsed_ns: u128,
    /// Ingested tuples per wall-clock second — the headline throughput.
    pub tuples_per_sec: f64,
    /// 99th-percentile per-query tick latency in nanoseconds, merged from
    /// every `serena_query_tick_duration_ns` histogram.
    pub p99_tick_ns: u64,
    /// Total snapshot size after the run.
    pub mem_bytes: usize,
    /// Snapshot bytes per registered query.
    pub mem_per_query: usize,
    /// Scheduler worker-pool width the run executed on (0 = runtime default).
    pub workers: usize,
    /// Cross-query β invocations coalesced onto an identical in-flight or
    /// memoized call (`serena_beta_dedup_total`).
    pub beta_dedup: u64,
    /// Tick tasks stolen across scheduler workers (`serena_sched_steals_total`).
    pub sched_steals: u64,
}

/// Run the scale benchmark: deploy, register, tick, measure.
pub fn run_scale(config: &ScaleConfig) -> ScaleOutcome {
    let (mut pems, names) = config.deploy();
    let spec = config.spec();
    let trace = *spec.arrival_trace().expect("scale spec is trace-driven");

    let start = std::time::Instant::now();
    let mut tuples_out = 0u64;
    let mut errors = 0u64;
    for _ in 0..config.ticks {
        for (_, report) in pems.tick() {
            tuples_out += (report.delta.inserts.len()
                + report.delta.deletes.len()
                + report.batch.len()) as u64;
            errors += report.errors.len() as u64;
        }
    }
    let elapsed = start.elapsed();

    // Ingest accounting: every stream subscriber consumed the full trace;
    // βˢ queries additionally invoked live services (counted in stats).
    let arrivals: u64 = (0..config.ticks)
        .map(|t| trace.count_at(serena_core::time::Instant(t)) as u64)
        .sum();
    let stream_subscribers = names
        .iter()
        .filter(|n| n.starts_with("hot") || n.starts_with("area") || n.starts_with("recent"))
        .count() as u64;
    let invocations: u64 = names
        .iter()
        .filter_map(|n| pems.processor().stats(n))
        .map(|s| s.invocations)
        .sum();
    let tuples_in = arrivals * stream_subscribers + invocations;

    let p99_tick_ns = merged_p99_tick_ns(&pems, &names);
    let mem_bytes = pems.snapshot_bytes().len();
    let (beta_dedup, _misses) = pems.dedup_stats();
    let sched_steals = pems
        .metrics_registry()
        .counter_value("serena_sched_steals_total", &[])
        .unwrap_or(0);

    ScaleOutcome {
        devices: config.devices + config.cameras + config.messengers,
        queries: names.len(),
        ticks: config.ticks,
        tuples_in,
        tuples_out,
        errors,
        elapsed_ns: elapsed.as_nanos(),
        tuples_per_sec: tuples_in as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        p99_tick_ns,
        mem_bytes,
        mem_per_query: mem_bytes / names.len().max(1),
        workers: config.workers,
        beta_dedup,
        sched_steals,
    }
}

/// End-to-end p99 tick latency across *all* queries: per-query
/// `serena_query_tick_duration_ns` histograms merged bucket-wise, then the
/// 99th-percentile bucket bound of the merged distribution.
pub fn merged_p99_tick_ns(pems: &Pems, names: &[String]) -> u64 {
    let registry = pems.metrics_registry();
    let mut merged: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for name in names {
        let h = registry.histogram("serena_query_tick_duration_ns", &[("query", name)]);
        let mut prev = 0u64;
        for (bound, cum) in h.cumulative_buckets() {
            *merged.entry(bound).or_insert(0) += cum - prev;
            prev = cum;
        }
    }
    let total: u64 = merged.values().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * 0.99).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (bound, count) in &merged {
        seen += count;
        if seen >= rank {
            return *bound;
        }
    }
    *merged.keys().next_back().unwrap_or(&0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleConfig {
        ScaleConfig {
            seed: 7,
            devices: 60,
            cameras: 6,
            messengers: 3,
            queries: 12,
            ticks: 6,
            mean_arrivals: 16,
            workers: 2,
        }
    }

    #[test]
    fn workload_scales_to_the_requested_query_count() {
        assert_eq!(ScaleConfig::default().workload().total(), 120);
        assert_eq!(tiny().workload().total(), 12);
        let sixteen = ScaleConfig {
            queries: 16,
            ..tiny()
        };
        assert_eq!(sixteen.workload().total(), 16);
    }

    #[test]
    fn run_scale_reports_nonzero_indicators() {
        let outcome = run_scale(&tiny());
        assert_eq!(outcome.queries, 12);
        assert_eq!(outcome.ticks, 6);
        assert!(outcome.tuples_in > 0, "no tuples ingested");
        assert!(outcome.tuples_out > 0, "no tuples emitted");
        assert!(outcome.p99_tick_ns > 0, "no tick latency recorded");
        assert!(outcome.mem_per_query > 0, "no snapshot payload");
        assert!(outcome.tuples_per_sec > 0.0);
    }

    #[test]
    fn scale_runs_are_deterministic_wall_clock_aside() {
        let a = run_scale(&tiny());
        let b = run_scale(&tiny());
        assert_eq!(a.tuples_in, b.tuples_in);
        assert_eq!(a.tuples_out, b.tuples_out);
        assert_eq!(a.errors, b.errors);
        assert_eq!(a.mem_bytes, b.mem_bytes);
        assert_eq!(a.beta_dedup, b.beta_dedup);
    }

    #[test]
    fn overlapping_sampled_queries_coalesce_invocations() {
        // 40 queries ⇒ two `sampled` instances issuing the identical
        // getTemperature fan-out at the same instants — the second one
        // must ride the first one's calls.
        let config = ScaleConfig {
            queries: 40,
            ..tiny()
        };
        let outcome = run_scale(&config);
        assert!(
            outcome.beta_dedup > 0,
            "no cross-query dedup on an overlapping workload: {outcome:?}"
        );
    }

    #[test]
    fn worker_counts_do_not_change_scale_indicators() {
        let serial = run_scale(&tiny().with_workers(1));
        let wide = run_scale(&tiny().with_workers(8));
        assert_eq!(serial.tuples_in, wide.tuples_in);
        assert_eq!(serial.tuples_out, wide.tuples_out);
        assert_eq!(serial.errors, wide.errors);
        assert_eq!(serial.mem_bytes, wide.mem_bytes);
        assert_eq!(serial.sched_steals, 0, "a 1-wide pool has nothing to steal");
    }
}
