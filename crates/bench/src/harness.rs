//! A self-contained micro-benchmark harness.
//!
//! The workspace builds without registry access, so the benches cannot pull
//! in Criterion. This module provides the narrow slice of Criterion's API
//! the experiment harnesses use — `Criterion::benchmark_group`,
//! `bench_with_input`, `Throughput`, `criterion_group!`/`criterion_main!` —
//! backed by a simple calibrated timing loop: each benchmark is warmed up,
//! the iteration count is scaled to fill the measurement window, and the
//! mean/best per-iteration time (plus derived element throughput) is
//! printed as one line per benchmark.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed benchmark measurement, as recorded by the timing loop.
///
/// Records accumulate in a process-wide buffer as benchmarks run; a bench
/// binary's `main` can drain them with [`take_records`] to persist results
/// (e.g. as JSON) in addition to the printed report.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark label (`group/bench/param`).
    pub label: String,
    /// Mean per-iteration time in nanoseconds across all batches.
    pub mean_ns: u128,
    /// Best (least-noise) batch's per-iteration time in nanoseconds.
    pub best_ns: u128,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Drain every [`BenchRecord`] accumulated since the last call (or process
/// start), in execution order.
pub fn take_records() -> Vec<BenchRecord> {
    std::mem::take(&mut RECORDS.lock().unwrap_or_else(|p| p.into_inner()))
}

/// Declared throughput of one benchmark, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identify a benchmark by name and parameter (`name/param`).
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identify a benchmark by its parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// The timing loop driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly, timing the whole batch.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark registry/driver.
pub struct Criterion {
    /// Target measurement window per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep whole-suite runtime modest: the harness exists to surface
        // relative costs, not publishable statistics.
        let ms = std::env::var("SERENA_BENCH_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(200u64);
        Criterion {
            measure_for: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_bench(&id.label, self.measure_for, None, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for Criterion compatibility; the calibrated loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for Criterion compatibility; the calibrated loop ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `f` against one input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(&label, self.criterion.measure_for, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark a closure with no explicit input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_bench(&label, self.criterion.measure_for, self.throughput, f);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

fn run_bench(
    label: &str,
    measure_for: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate: run single iterations until we know roughly how long one
    // takes (also serves as warm-up).
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let mut per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let iters = (measure_for.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    // Measure in a few batches, keeping the best (least-noise) batch.
    let batches = 3;
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..batches {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let batch_per_iter = b.elapsed / iters.max(1) as u32;
        best = best.min(batch_per_iter);
        total += b.elapsed;
        total_iters += iters;
    }
    per_iter = total / total_iters.max(1) as u32;

    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let per_sec = n as f64 / per_iter.as_secs_f64();
            format!("  {per_sec:>12.0} elem/s")
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let per_sec = n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {per_sec:>9.1} MiB/s")
        }
        _ => String::new(),
    };
    println!(
        "{label:<44} mean {:>12} best {:>12}{rate}",
        fmt_duration(per_iter),
        fmt_duration(best)
    );
    RECORDS
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(BenchRecord {
            label: label.to_string(),
            mean_ns: per_iter.as_nanos(),
            best_ns: best.as_nanos(),
        });
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Group benchmark functions under one runner, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_runs_and_reports() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("smoke");
            g.throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::from_parameter(1), &3u64, |b, &x| {
                b.iter(|| {
                    ran += 1;
                    x * 2
                })
            });
            g.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        assert!(ran > 0);
        let records = take_records();
        assert!(records.iter().any(|r| r.label == "smoke/1"));
        assert!(records.iter().any(|r| r.label == "standalone"));
        assert!(records.iter().all(|r| r.mean_ns > 0));
        // drained: a second take is empty
        assert!(take_records().is_empty());
    }
}
