//! E10 — continuous-engine scalability: tick latency and per-tick work for
//! the full surveillance deployment as sensors, contacts and the alert
//! selectivity scale. This is the "scalability … assessment" §5.2 leaves
//! open, on the simulated substrate.
//!
//! ```sh
//! cargo run --release -p serena-bench --bin scale_sweep
//! ```

use std::time::Instant as WallClock;

use serena_bench::report;
use serena_core::time::Instant;
use serena_pems::scenario::{deploy_surveillance, SurveillanceConfig};

fn run(config: &SurveillanceConfig, ticks: u64) -> (f64, u64, u64) {
    let mut s = deploy_surveillance(config).expect("deployment");
    // warm-up: let discovery settle
    s.pems.run_ticks(2);
    let t0 = WallClock::now();
    let mut actions = 0u64;
    let mut tuples = 0u64;
    for _ in 0..ticks {
        for (_, r) in s.pems.tick() {
            actions += r.actions.len() as u64;
            tuples += (r.delta.magnitude() + r.batch.len()) as u64;
        }
    }
    let per_tick = t0.elapsed().as_secs_f64() * 1e6 / ticks as f64;
    (per_tick, actions, tuples)
}

fn main() {
    let ticks = 50u64;

    println!(
        "{}",
        report::banner("E10a — tick latency vs #sensors (idle: no alerts)")
    );
    let mut rows = Vec::new();
    for sensors in [5usize, 10, 20, 50, 100, 200] {
        let config = SurveillanceConfig {
            sensors,
            cameras: 10,
            contacts: 10,
            threshold: 1000.0, // nothing alerts: pure stream load
            ..SurveillanceConfig::default()
        };
        let (per_tick, actions, tuples) = run(&config, ticks);
        assert_eq!(actions, 0);
        rows.push(vec![
            format!("{sensors}"),
            format!("{per_tick:.1} µs"),
            format!("{:.1}", tuples as f64 / ticks as f64),
        ]);
    }
    println!(
        "{}",
        report::table(&["sensors", "tick latency", "tuples/tick"], &rows)
    );

    // NOTE on alert semantics: the alert query projects hot readings onto
    // (location, manager) before invoking, so a *steady* hot area alerts
    // once per episode, while an *intermittently* hot area re-alerts every
    // time the threshold is re-crossed. Thresholds inside the sensors'
    // fluctuation band therefore maximise the action rate.
    println!(
        "{}",
        report::banner("E10b — tick latency vs alert activity (50 sensors)")
    );
    let mut rows = Vec::new();
    for (label, threshold) in [
        ("never hot (θ=1000)", 1000.0),
        ("intermittent (θ=22.9, band edge)", 22.9),
        ("steady hot (θ=21.0, one episode)", 21.0),
        ("steady hot (θ=0, one episode)", 0.0),
    ] {
        let config = SurveillanceConfig {
            sensors: 50,
            cameras: 10,
            contacts: 10,
            threshold,
            ..SurveillanceConfig::default()
        };
        let (per_tick, actions, _) = run(&config, ticks);
        rows.push(vec![
            label.to_string(),
            format!("{per_tick:.1} µs"),
            format!("{:.2}", actions as f64 / ticks as f64),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "alert activity",
                "tick latency",
                "actions/tick (post-warmup)"
            ],
            &rows
        )
    );

    println!(
        "{}",
        report::banner("E10c — window size on the RSS scenario")
    );
    let mut rows = Vec::new();
    for window in [1u64, 4, 16, 64] {
        let config = serena_pems::scenario::RssConfig {
            window,
            ..serena_pems::scenario::RssConfig::default()
        };
        let mut pems = serena_pems::scenario::deploy_rss(&config).unwrap();
        let t0 = WallClock::now();
        let mut held_max = 0usize;
        for _ in 0..200u64 {
            pems.tick();
            let held = pems
                .processor()
                .current_relation("keyword_watch")
                .map(|r| r.len())
                .unwrap_or(0);
            held_max = held_max.max(held);
        }
        rows.push(vec![
            format!("W[{window}]"),
            format!("{:.1} µs", t0.elapsed().as_secs_f64() * 1e6 / 200.0),
            format!("{held_max}"),
        ]);
    }
    println!(
        "{}",
        report::table(&["window", "tick latency", "max items held"], &rows)
    );

    // Make the time type explicit so the report reads unambiguously.
    let _ = Instant::ZERO;
    println!("OK: latency grows with stream volume and state size, stays flat when idle.");
}
