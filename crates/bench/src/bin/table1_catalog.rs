//! E1 — reproduce **Table 1**: the prototype & service catalog of the
//! temperature-surveillance scenario, parsed from the paper's exact
//! pseudo-DDL and round-tripped through the resolver.
//!
//! ```sh
//! cargo run -p serena-bench --bin table1_catalog
//! ```

use serena_bench::report;
use serena_ddl::{parse_program, resolve_prototype, Statement};

const TABLE_1: &str = "
    PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
    PROTOTYPE checkPhoto( area STRING ) : ( quality INTEGER, delay REAL );
    PROTOTYPE takePhoto( area STRING, quality INTEGER ) : ( photo BLOB );
    PROTOTYPE getTemperature( ) : ( temperature REAL );
    SERVICE email IMPLEMENTS sendMessage;
    SERVICE jabber IMPLEMENTS sendMessage;
    SERVICE camera01 IMPLEMENTS checkPhoto, takePhoto;
    SERVICE camera02 IMPLEMENTS checkPhoto, takePhoto;
    SERVICE webcam07 IMPLEMENTS checkPhoto, takePhoto;
    SERVICE sensor01 IMPLEMENTS getTemperature;
    SERVICE sensor06 IMPLEMENTS getTemperature;
    SERVICE sensor07 IMPLEMENTS getTemperature;
    SERVICE sensor22 IMPLEMENTS getTemperature;
";

fn main() {
    println!(
        "{}",
        report::banner("Table 1 — Prototypes and Services (parsed from the paper's DDL)")
    );
    let stmts = parse_program(TABLE_1).expect("Table 1 parses");

    let mut proto_rows = Vec::new();
    let mut service_rows = Vec::new();
    for stmt in &stmts {
        match stmt {
            Statement::Prototype {
                name,
                input,
                output,
                active,
            } => {
                let p = resolve_prototype(name, input, output, *active)
                    .expect("Table 1 prototypes are valid");
                proto_rows.push(vec![
                    p.name().to_string(),
                    format!("{}", p.input()),
                    format!("{}", p.output()),
                    if p.is_active() {
                        "ACTIVE".into()
                    } else {
                        "passive".into()
                    },
                ]);
                println!("{}", p.to_ddl());
            }
            Statement::Service { name, prototypes } => {
                service_rows.push(vec![name.clone(), prototypes.join(", ")]);
            }
            other => panic!("unexpected statement in Table 1: {other:?}"),
        }
    }

    println!(
        "\n{}",
        report::table(&["prototype", "input", "output", "tag"], &proto_rows)
    );
    println!(
        "{}",
        report::table(&["service", "implements"], &service_rows)
    );

    assert_eq!(proto_rows.len(), 4, "the paper declares 4 prototypes");
    assert_eq!(service_rows.len(), 9, "the paper declares 9 services");
    println!("OK: 4 prototypes + 9 services, exactly as Table 1.");
}
