//! E9 — optimizer effect, quantified: invocation counts and wall time for
//! the Q2 family (naive vs Table-5-rewritten) as the environment and the
//! selectivity scale. The paper's qualitative claim — pushing selections
//! below passive invocations is the dominant win — becomes a measured
//! curve; the cost model's prediction is printed alongside.
//!
//! ```sh
//! cargo run --release -p serena-bench --bin opt_sweep
//! ```

use std::collections::BTreeMap;
use std::time::Instant as WallClock;

use serena_bench::{report, workload};
use serena_core::eval::CountingInvoker;
use serena_core::prelude::*;
use serena_core::rewrite::{estimate, optimize, CostParams};

fn main() {
    println!(
        "{}",
        report::banner("E9a — invocations vs #cameras (selectivity fixed: 1 area of 5)")
    );
    let mut rows = Vec::new();
    for n in [5usize, 10, 20, 50, 100, 200] {
        let env = workload::scaled_environment(0, n, 0);
        let reg = workload::scaled_registry(0, n);
        let naive = workload::q2_family(false, 5);
        let optimized = optimize(&naive, &env).plan;

        let measure = |plan: &Plan| {
            let counter = CountingInvoker::new(&reg);
            let t0 = WallClock::now();
            ExecContext::new(&env, &counter, serena_core::time::Instant(1))
                .execute(plan)
                .unwrap();
            (counter.total(), t0.elapsed())
        };
        let (inv_naive, t_naive) = measure(&naive);
        let (inv_opt, t_opt) = measure(&optimized);

        let cards: BTreeMap<String, usize> = [("cameras".to_string(), n)].into();
        let params = CostParams {
            selectivity: 1.0 / 5.0,
            ..CostParams::default()
        };
        let c_naive = estimate(&naive, &env, &cards, &params).unwrap();
        let c_opt = estimate(&optimized, &env, &cards, &params).unwrap();

        rows.push(vec![
            format!("{n}"),
            format!("{inv_naive}"),
            format!("{inv_opt}"),
            format!("{:.2}×", inv_naive as f64 / inv_opt as f64),
            format!("{:.1}µs", t_naive.as_secs_f64() * 1e6),
            format!("{:.1}µs", t_opt.as_secs_f64() * 1e6),
            format!("{:.0}/{:.0}", c_naive.invocations, c_opt.invocations),
        ]);
        assert!(inv_opt < inv_naive, "pushdown must reduce invocations");
    }
    println!(
        "{}",
        report::table(
            &[
                "cameras",
                "invocations naive",
                "invocations optimized",
                "saving",
                "time naive",
                "time optimized",
                "cost-model inv (naive/opt)"
            ],
            &rows
        )
    );

    println!(
        "{}",
        report::banner("E9b — invocations vs selectivity (100 cameras)")
    );
    let n = 100usize;
    let env = workload::scaled_environment(0, n, 0);
    let reg = workload::scaled_registry(0, n);
    let mut rows = Vec::new();
    // selectivity is driven by how many areas the filter keeps; we emulate
    // by ORing area predicates (1 of 5 .. 5 of 5).
    for keep in 1..=5usize {
        let mut f = serena_core::formula::Formula::eq_const("area", workload::AREAS[0]);
        for a in &workload::AREAS[1..keep] {
            f = f.or(serena_core::formula::Formula::eq_const("area", *a));
        }
        let naive = Plan::relation("cameras")
            .invoke("checkPhoto", "camera")
            .select(
                f.clone()
                    .and(serena_core::formula::Formula::ge_const("quality", 5)),
            )
            .invoke("takePhoto", "camera")
            .project(["photo"]);
        let optimized = optimize(&naive, &env).plan;
        let count = |plan: &Plan| {
            let counter = CountingInvoker::new(&reg);
            ExecContext::new(&env, &counter, serena_core::time::Instant(1))
                .execute(plan)
                .unwrap();
            counter.count_of("checkPhoto")
        };
        let (cn, co) = (count(&naive), count(&optimized));
        rows.push(vec![
            format!("{}/5 areas", keep),
            format!("{cn}"),
            format!("{co}"),
            format!("{:.2}×", cn as f64 / co as f64),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "selectivity",
                "checkPhoto naive",
                "checkPhoto optimized",
                "saving"
            ],
            &rows
        )
    );
    println!(
        "OK: savings shrink as selectivity approaches 1 — the crossover the cost model predicts."
    );
}
