//! E4 — reproduce **Table 4 + Examples 5–7**: the one-shot queries `Q1`,
//! `Q1'`, `Q2`, `Q2'` with their results, action sets and equivalence
//! verdicts; plus the continuous `Q3`/`Q4` run by the stream executor.
//!
//! ```sh
//! cargo run -p serena-bench --bin table4_queries
//! ```

use serena_bench::report;
use serena_core::env::examples::example_environment;
use serena_core::equiv::{check_at, check_over_instants};
use serena_core::exec::ExecContext;
use serena_core::plan::examples::{q1, q1_prime, q2, q2_prime};
use serena_core::prelude::*;
use serena_core::service::fixtures::example_registry;
use serena_core::tuple;

fn main() {
    let env = example_environment();
    let reg = example_registry();

    println!("{}", report::banner("Table 4 — the example queries"));
    for (name, plan) in [
        ("Q1 ", q1()),
        ("Q1'", q1_prime()),
        ("Q2 ", q2()),
        ("Q2'", q2_prime()),
    ] {
        println!("{name} = {plan}");
    }

    println!(
        "{}",
        report::banner("Example 6 — action sets of Q1 and Q1'")
    );
    let out1 = ExecContext::new(&env, &reg, Instant::ZERO)
        .execute(&q1())
        .unwrap();
    println!("Actions(Q1)  = {}", out1.actions);
    let out1p = ExecContext::new(&env, &reg, Instant::ZERO)
        .execute(&q1_prime())
        .unwrap();
    println!("Actions(Q1') = {}", out1p.actions);
    assert_eq!(out1.actions.len(), 2);
    assert_eq!(out1p.actions.len(), 3);
    assert!(out1p
        .actions
        .iter()
        .any(|a| a.input().to_string().contains("carla@elysee.fr")));

    println!("{}", report::banner("Example 7 — equivalence verdicts"));
    let r1 = check_at(&q1(), &q1_prime(), &env, &reg, Instant::ZERO).unwrap();
    println!(
        "Q1 ≡ Q1'?  results_equal={} actions_equal={} → {}",
        r1.results_equal,
        r1.actions_equal,
        if r1.equivalent() {
            "EQUIVALENT"
        } else {
            "NOT equivalent"
        }
    );
    assert!(r1.results_equal && !r1.actions_equal);

    let r2 = check_over_instants(&q2(), &q2_prime(), &env, &reg, (0..10).map(Instant)).unwrap();
    println!(
        "Q2 ≡ Q2'?  results_equal={} actions_equal={} → {}",
        r2.results_equal,
        r2.actions_equal,
        if r2.equivalent() {
            "EQUIVALENT"
        } else {
            "NOT equivalent"
        }
    );
    assert!(r2.equivalent());

    println!("{}", report::banner("Q1 result relation"));
    print!("{}", out1.relation.to_table());

    println!("{}", report::banner("Example 8 — continuous Q3 and Q4"));
    run_continuous();

    println!("\nOK: Examples 5, 6, 7 and 8 reproduced.");
}

fn run_continuous() {
    use serena_stream::plan::examples::{q3, q4};
    use serena_stream::{ContinuousQuery, FnStream, SourceSet, TableHandle};

    let temps_schema = serena_core::schema::XSchema::builder()
        .real("location", DataType::Str)
        .real("temperature", DataType::Real)
        .build()
        .unwrap();
    // scripted stream: hot spike at τ2, cold dip at τ4
    let script = |at: Instant| match at.ticks() {
        2 => vec![tuple!["office", 40.0]],
        4 => vec![tuple!["office", 5.0]],
        _ => vec![tuple!["office", 21.0]],
    };
    let reg = example_registry();

    println!("Q3 = {}", q3());
    let mut sources = SourceSet::new();
    sources.add_stream(
        "temperatures",
        temps_schema.clone(),
        Box::new(FnStream(script)),
    );
    sources.add_table(
        "contacts",
        TableHandle::with_tuples(
            serena_core::schema::examples::contacts_schema(),
            serena_core::xrelation::examples::contacts().into_tuples(),
        ),
    );
    let mut q3 = ContinuousQuery::compile(&q3(), &mut sources).unwrap();
    for t in 0..6u64 {
        let r = q3.tick_with(&reg, &NoopMetrics);
        if !r.actions.is_empty() {
            println!("  τ={t}: {} alert(s): {}", r.actions.len(), r.actions);
        }
    }

    println!("Q4 = {}", q4());
    let mut sources = SourceSet::new();
    sources.add_stream("temperatures", temps_schema, Box::new(FnStream(script)));
    sources.add_table(
        "cameras",
        TableHandle::with_tuples(
            serena_core::schema::examples::cameras_schema(),
            serena_core::xrelation::examples::cameras().into_tuples(),
        ),
    );
    let mut q4 = ContinuousQuery::compile(&q4(), &mut sources).unwrap();
    for t in 0..6u64 {
        let r = q4.tick_with(&reg, &NoopMetrics);
        if !r.batch.is_empty() {
            println!("  τ={t}: photo stream emitted {} blob(s)", r.batch.len());
        }
    }
}
