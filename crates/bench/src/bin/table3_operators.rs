//! E3 — reproduce **Table 3**: execute every Serena operator (a)–(f) on
//! the running example and assert its formal postconditions — output
//! schema, real/virtual partition, binding-pattern survival and tuple set.
//!
//! ```sh
//! cargo run -p serena-bench --bin table3_operators
//! ```

use serena_bench::report;
use serena_core::action::ActionSet;
use serena_core::attr::attr;
use serena_core::formula::Formula;
use serena_core::ops;
use serena_core::service::fixtures::example_registry;
use serena_core::time::Instant;
use serena_core::xrelation::examples::{cameras, contacts, sensors};

fn show(title: &str, rel: &serena_core::xrelation::XRelation) {
    println!("{}", report::banner(title));
    println!(
        "schema: {:?}   realSchema: {:?}   virtualSchema: {:?}",
        rel.schema().name_set(),
        rel.schema().real_name_set(),
        rel.schema().virtual_name_set()
    );
    println!(
        "BP(S): {:?}",
        rel.schema()
            .binding_patterns()
            .iter()
            .map(|bp| bp.key())
            .collect::<Vec<_>>()
    );
    print!("{}", rel.to_table());
}

fn main() {
    let reg = example_registry();

    // (a) projection: π keeps exactly the surviving binding patterns
    let p = ops::project(
        &contacts(),
        &[
            attr("address"),
            attr("messenger"),
            attr("text"),
            attr("sent"),
        ],
    )
    .unwrap();
    show("(a) π address,messenger,text,sent (contacts)", &p);
    assert_eq!(
        p.schema().binding_patterns().len(),
        1,
        "sendMessage survives"
    );
    let p2 = ops::project(&contacts(), &[attr("name"), attr("address")]).unwrap();
    assert!(
        p2.schema().binding_patterns().is_empty(),
        "BP dropped without messenger"
    );

    // (b) selection: formulas over real attributes only
    let s = ops::select(&contacts(), &Formula::ne_const("name", "Carla")).unwrap();
    show("(b) σ name<>'Carla' (contacts)", &s);
    assert_eq!(s.len(), 2);
    assert!(
        ops::select(&contacts(), &Formula::eq_const("sent", true)).is_err(),
        "selection on a virtual attribute is rejected"
    );

    // (c) renaming: service-attribute renames follow the BP
    let r = ops::rename(&sensors(), &attr("sensor"), &attr("probe")).unwrap();
    show("(c) ρ sensor→probe (sensors)", &r);
    assert_eq!(
        r.schema().binding_patterns()[0].key(),
        "getTemperature[probe]"
    );

    // (d) natural join with implicit realization
    let reqs = serena_core::xrelation::XRelation::from_tuples(
        serena_core::schema::XSchema::builder()
            .real("area", serena_core::value::DataType::Str)
            .real("quality", serena_core::value::DataType::Int)
            .build()
            .unwrap(),
        vec![serena_core::tuple!["office", 5]],
    );
    let j = ops::join(&cameras(), &reqs).unwrap();
    show("(d) cameras ⋈ requirements(area, quality)", &j);
    assert!(
        j.schema().is_real("quality"),
        "implicit realization: quality became real"
    );
    assert_eq!(
        j.schema()
            .binding_patterns()
            .iter()
            .map(|bp| bp.key())
            .collect::<Vec<_>>(),
        vec!["takePhoto[camera]"],
        "checkPhoto eliminated (its output got realized)"
    );

    // (e) assignment
    let a = ops::assign(
        &contacts(),
        &attr("text"),
        &ops::AssignSource::constant("Bonjour!"),
    )
    .unwrap();
    show("(e) α text:='Bonjour!' (contacts)", &a);
    assert!(a.schema().is_real("text"));
    assert_eq!(a.schema().binding_patterns().len(), 1);

    // (f) invocation: realizes the BP outputs, records actions if active
    let mut actions = ActionSet::new();
    let i = ops::invoke(
        &a,
        "sendMessage",
        "messenger",
        &reg,
        Instant::ZERO,
        &mut actions,
    )
    .unwrap();
    show("(f) β sendMessage[messenger] (…)", &i);
    assert!(i.schema().is_real("sent"));
    assert!(i.schema().binding_patterns().is_empty());
    println!("\naction set: {actions}");
    assert_eq!(actions.len(), 3, "three messages, one per contact");

    println!("\nOK: all six operator families satisfy their Table 3 postconditions.");
}
