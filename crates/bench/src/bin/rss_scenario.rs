//! E7 — reproduce **§5.2 scenario 2**: RSS feeds wrapped as streams, a
//! windowed continuous keyword query, and the continuously-updated result
//! table (insertions when matching news appear, retractions when old news
//! expire), checked against the feed generators as an oracle.
//!
//! ```sh
//! cargo run -p serena-bench --bin rss_scenario
//! ```

use serena_bench::report;
use serena_core::time::Instant;
use serena_pems::scenario::{deploy_rss, rss_expected_matches, RssConfig};
use serena_services::devices::rss::SimRssFeed;

fn main() {
    let config = RssConfig {
        window: 8,
        ..RssConfig::default()
    };
    let keyword = SimRssFeed::tracked_keyword();
    println!(
        "{}",
        report::banner(&format!(
            "§5.2 scenario 2 — '{keyword}' watch over {} feeds, window {}",
            config.feeds.len(),
            config.window
        ))
    );

    let mut pems = deploy_rss(&config).expect("deployment");
    let ticks = 40u64;
    let mut rows = Vec::new();
    let mut total_in = 0usize;
    let mut total_out = 0usize;
    for t in 0..ticks {
        let reports = pems.tick();
        let r = &reports[0].1;
        total_in += r.delta.inserts.len();
        total_out += r.delta.deletes.len();
        if !r.delta.is_empty() {
            rows.push(vec![
                format!("{t}"),
                format!("+{}", r.delta.inserts.len()),
                format!("-{}", r.delta.deletes.len()),
                r.delta
                    .inserts
                    .sorted_occurrences()
                    .first()
                    .map(|t| format!("{} — {}", t[0], t[1]))
                    .unwrap_or_default(),
            ]);
        }
    }
    println!(
        "{}",
        report::table(&["τ", "matched", "expired", "first new headline"], &rows)
    );

    let expected = rss_expected_matches(&config, keyword, Instant(0), Instant(ticks - 1));
    println!("matched items: {total_in} (oracle: {expected}); expirations: {total_out}");
    assert_eq!(total_in, expected, "every keyword item must be caught");
    assert!(total_out > 0, "the window must expire old items");

    let current = pems
        .processor()
        .current_relation("keyword_watch")
        .expect("finite result");
    println!(
        "\ncurrent window ({} items):\n{}",
        current.len(),
        current.to_table()
    );
    // the window holds exactly the last-`window` instants' matches
    // (as a set: identical headlines republished within the window collapse)
    let distinct_expected: std::collections::BTreeSet<(String, String)> = config
        .feeds
        .iter()
        .flat_map(|(n, s, p, k)| {
            SimRssFeed::new(n.clone(), *s, *p, *k)
                .items_between(Instant(ticks - config.window), Instant(ticks - 1))
        })
        .filter(|i| i.title.contains(keyword))
        .map(|i| (i.source, i.title))
        .collect();
    assert_eq!(current.len(), distinct_expected.len());
    println!("OK: continuous result matches the generator oracle exactly.");
}
