//! E2 — reproduce **Table 2**: the `contacts` and `cameras` X-Relation
//! declarations, parsed from the paper's DDL, validated against the
//! binding-pattern restrictions of Definition 2, and rendered back.
//!
//! ```sh
//! cargo run -p serena-bench --bin table2_xrelations
//! ```

use serena_bench::report;
use serena_core::env::examples::example_environment;
use serena_ddl::{parse_program, resolve_relation_schema, Statement};

const TABLE_2: &str = "
    EXTENDED RELATION contacts (
      name STRING,
      address STRING,
      text STRING VIRTUAL,
      messenger SERVICE,
      sent BOOLEAN VIRTUAL
    )
    USING BINDING PATTERNS (
      sendMessage[messenger] ( address, text ) : ( sent )
    );

    EXTENDED RELATION cameras (
      camera SERVICE,
      area STRING,
      quality INTEGER VIRTUAL,
      delay REAL VIRTUAL,
      photo BLOB VIRTUAL
    )
    USING BINDING PATTERNS (
      checkPhoto[camera] ( area ) : ( quality, delay ),
      takePhoto[camera] ( area, quality ) : ( photo )
    );
";

fn main() {
    println!(
        "{}",
        report::banner("Table 2 — X-Relations of the relational pervasive environment")
    );
    let env = example_environment(); // provides the prototype catalog
    let stmts = parse_program(TABLE_2).expect("Table 2 parses");

    for stmt in &stmts {
        let Statement::ExtendedRelation {
            name,
            attrs,
            bindings,
            ..
        } = stmt
        else {
            panic!("unexpected statement");
        };
        let schema = resolve_relation_schema(attrs, bindings, &env)
            .expect("Table 2 schemas satisfy Definition 2");
        println!("{}\n", schema.to_ddl(name));

        let rows: Vec<Vec<String>> = schema
            .attrs()
            .iter()
            .map(|a| {
                vec![
                    a.name.to_string(),
                    a.ty.to_string(),
                    if a.is_real() {
                        "real".into()
                    } else {
                        "virtual".into()
                    },
                ]
            })
            .collect();
        println!("{}", report::table(&["attribute", "type", "status"], &rows));
        let bp_rows: Vec<Vec<String>> = schema
            .binding_patterns()
            .iter()
            .map(|bp| {
                vec![
                    bp.key(),
                    bp.to_ddl(),
                    if bp.is_active() {
                        "active".into()
                    } else {
                        "passive".into()
                    },
                ]
            })
            .collect();
        println!(
            "{}",
            report::table(&["binding pattern", "signature", "tag"], &bp_rows)
        );
    }

    // sanity: the parsed schemas match the programmatic running example
    let contacts = serena_core::schema::examples::contacts_schema();
    let Statement::ExtendedRelation {
        attrs, bindings, ..
    } = &stmts[0]
    else {
        panic!()
    };
    let parsed = resolve_relation_schema(attrs, bindings, &env).unwrap();
    assert!(parsed.compatible_with(&contacts));
    println!("OK: parsed schemas are identical to the running example's.");
}
