//! E6 — reproduce **Figure 1 + §5.2 scenario 1**: the full PEMS running
//! the temperature-surveillance experiment, with the architecture's module
//! interactions visible in the output: LERM registrations travelling the
//! discovery bus, the discovery query maintaining `cameras`, the
//! continuous alert query sending messages, and a sensor hot-plugged
//! mid-query.
//!
//! ```sh
//! cargo run -p serena-bench --bin fig1_surveillance
//! ```

use serena_bench::report;
use serena_core::prelude::*;
use serena_pems::scenario::{deploy_surveillance, total_messages, SurveillanceConfig};
use serena_services::bus::BusConfig;
use serena_services::devices::temperature::SimTemperatureSensor;

fn main() {
    println!(
        "{}",
        report::banner("Figure 1 — PEMS architecture, assembled")
    );
    println!(
        "core modules: Environment Resource Manager (discovery bus + registry),\n\
         Extended Table Manager (XD-Relations + DDL), Query Processor (continuous queries)\n\
         distributed: Local ERMs announcing services over the simulated network\n"
    );

    let config = SurveillanceConfig {
        sensors: 9,
        cameras: 6,
        contacts: 3,
        threshold: 30.0,
        heat_events: vec![
            (1, Instant(3), Instant(3), 41.0),
            (2, Instant(6), Instant(6), 39.0),
        ],
        bus: BusConfig {
            announce_latency: 1,
            leave_latency: 1,
            jitter: 0,
            seed: 11,
        },
        ..SurveillanceConfig::default()
    };
    let mut s = deploy_surveillance(&config).expect("deployment");
    println!(
        "deployed: {} sensors, {} cameras, {} contacts behind LERM 'building' (announce latency 1 tick)",
        config.sensors, config.cameras, config.contacts
    );

    let mut rows = Vec::new();
    for tick in 0..12u64 {
        let discovered = s.pems.directory().registry().len();
        let reports = s.pems.tick();
        let mut alerts = 0;
        let mut photos = 0;
        let mut errors = 0;
        for (name, r) in &reports {
            match name.as_str() {
                "alerts" => {
                    alerts = r.actions.len();
                    errors += r.errors.len();
                }
                "photos" => photos = r.batch.len(),
                _ => {}
            }
        }
        rows.push(vec![
            format!("{tick}"),
            format!("{discovered}"),
            format!("{alerts}"),
            format!("{photos}"),
            format!("{errors}"),
        ]);
        if tick == 7 {
            let lerm = s.pems.local_erm("annex");
            lerm.register_service(
                "sensor99",
                SimTemperatureSensor::new(99, 45.0, 0.5).into_service(),
                s.pems.clock(),
            );
            s.pems
                .directory()
                .set("sensor99", "location", Value::str("office"));
            println!(">>> τ=7: hot-plugged sensor99 (45 °C, office) via LERM 'annex'");
        }
    }

    println!(
        "\n{}",
        report::table(
            &[
                "τ",
                "services discovered",
                "alerts sent",
                "photos emitted",
                "errors"
            ],
            &rows
        )
    );

    println!(
        "{}",
        report::banner(
            "delivered messages (the observable the paper verified by phone/mail client)"
        )
    );
    for (service, outbox) in &s.outboxes {
        for msg in outbox.lock().iter() {
            println!("  [{service}] {} → {}: {:?}", msg.at, msg.address, msg.text);
        }
    }

    let delivered = total_messages(&s.outboxes);
    assert!(delivered >= 2, "the two scripted heat events must alert");
    let hotplug_alerts: usize = s
        .outboxes
        .values()
        .flat_map(|o| o.lock().clone())
        .filter(|m| m.at.ticks() >= 9)
        .count();
    assert!(
        hotplug_alerts > 0,
        "the hot-plugged sensor must raise alerts without restarting the query"
    );
    println!(
        "\nOK: {delivered} messages delivered; late-joining sensor integrated mid-query ({hotplug_alerts} of them after the hot-plug)."
    );

    // ------------------------------------------------------------------
    // The FULL §5.2 scenario: one combined query over all four
    // XD-Relations, delivering the triggering camera shot as a photo
    // message (contacts extended "with an additional attribute allowing to
    // send a picture with a message").
    // ------------------------------------------------------------------
    println!(
        "{}",
        report::banner("full scenario — photo alerts (one combined query)")
    );
    let config = SurveillanceConfig {
        sensors: 6,
        cameras: 6,
        contacts: 3,
        threshold: 30.0,
        photo_alerts: true,
        heat_events: vec![(1, Instant(2), Instant(2), 44.0)],
        ..SurveillanceConfig::default()
    };
    let mut s = deploy_surveillance(&config).expect("full deployment");
    for _ in 0..6 {
        s.pems.tick();
    }
    let photo_msgs: Vec<_> = s
        .outboxes
        .values()
        .flat_map(|o| o.lock().clone())
        .filter(|m| m.attachment_bytes > 0)
        .collect();
    for m in &photo_msgs {
        println!(
            "  [{}] {} → {}: {:?} (+{} byte photo)",
            m.via.label(),
            m.at,
            m.address,
            m.text,
            m.attachment_bytes
        );
    }
    assert!(
        !photo_msgs.is_empty(),
        "the combined query must deliver a photo message"
    );
    println!(
        "OK: {} photo message(s) — implicit realization carried the camera shot into the contacts' virtual `photo`.",
        photo_msgs.len()
    );
}
