//! E11 — discovery churn: how fast do provider tables converge as
//! services join and leave under different bus latencies and churn rates?
//! Measures the lag between a service's (de)registration and its
//! appearance in (or disappearance from) the discovery-maintained
//! X-Relation — the dynamics behind "new sensors could be automatically
//! discovered and added to the table" (§1.2).
//!
//! ```sh
//! cargo run --release -p serena-bench --bin discovery_sweep
//! ```

use serena_bench::report;
use serena_core::prelude::*;
use serena_pems::Pems;
use serena_services::bus::BusConfig;

fn setup(bus: BusConfig) -> Pems {
    let mut pems = Pems::builder().bus(bus).build();
    pems.run_program(
        "PROTOTYPE getTemperature( ) : ( temperature REAL );
         EXTENDED RELATION sensors (
           sensor SERVICE, location STRING, temperature REAL VIRTUAL
         ) USING BINDING PATTERNS ( getTemperature[sensor] );",
    )
    .unwrap();
    pems.register_discovery("sensors", "getTemperature", "sensor")
        .unwrap();
    pems.register_query(
        "providers",
        &serena_stream::plan::StreamPlan::source("sensors"),
    )
    .unwrap();
    pems
}

fn table_size(pems: &Pems) -> usize {
    pems.processor()
        .current_relation("providers")
        .map(|r| r.len())
        .unwrap_or(0)
}

fn main() {
    println!("{}", report::banner("E11a — join lag vs announce latency"));
    let mut rows = Vec::new();
    for latency in [0u64, 1, 2, 5, 10] {
        let mut pems = setup(BusConfig {
            announce_latency: latency,
            leave_latency: latency,
            jitter: 0,
            seed: 3,
        });
        let lerm = pems.local_erm("wing");
        lerm.register_service(
            "s0",
            serena_core::service::fixtures::temperature_sensor(0),
            pems.clock(),
        );
        pems.directory().set("s0", "location", Value::str("office"));
        let mut join_lag = None;
        for t in 0..=latency + 2 {
            pems.tick();
            if join_lag.is_none() && table_size(&pems) == 1 {
                join_lag = Some(t);
            }
        }
        rows.push(vec![
            format!("{latency}"),
            join_lag
                .map(|l| format!("{l} ticks"))
                .unwrap_or("never".into()),
        ]);
        assert_eq!(join_lag, Some(latency), "lag must equal the bus latency");
    }
    println!(
        "{}",
        report::table(&["announce latency", "observed join lag"], &rows)
    );

    println!(
        "{}",
        report::banner("E11b — table accuracy under churn (100 ticks)")
    );
    let mut rows = Vec::new();
    for (label, period) in [
        ("slow (every 10 ticks)", 10u64),
        ("medium (every 4)", 4),
        ("fast (every 2)", 2),
    ] {
        let mut pems = setup(BusConfig {
            announce_latency: 1,
            leave_latency: 1,
            jitter: 1,
            seed: 17,
        });
        let lerm = pems.local_erm("wing");
        let mut live: Vec<String> = Vec::new();
        let mut next_id = 0u64;
        let mut exact_ticks = 0u32;
        let ticks = 100u64;
        for t in 0..ticks {
            if t % period == 0 {
                // alternate join/leave
                if next_id.is_multiple_of(2) || live.is_empty() {
                    let name = format!("s{next_id}");
                    lerm.register_service(
                        name.clone(),
                        serena_core::service::fixtures::temperature_sensor(next_id),
                        pems.clock(),
                    );
                    pems.directory()
                        .set(name.clone(), "location", Value::str("office"));
                    live.push(name);
                } else {
                    let name = live.remove(0);
                    lerm.unregister_service(name, pems.clock());
                }
                next_id += 1;
            }
            pems.tick();
            if table_size(&pems) == live.len() {
                exact_ticks += 1;
            }
        }
        rows.push(vec![
            label.to_string(),
            format!("{live_n}", live_n = live.len()),
            format!("{table_n}", table_n = table_size(&pems)),
            format!("{:.0}%", exact_ticks as f64 * 100.0 / ticks as f64),
        ]);
    }
    println!(
        "{}",
        report::table(
            &[
                "churn rate",
                "live services (end)",
                "table rows (end)",
                "ticks exactly in sync"
            ],
            &rows
        )
    );
    println!("OK: the discovery table tracks membership with a lag bounded by the bus latency.");
}
