//! E5 — reproduce **Table 5**: apply every rewrite rule to plans over
//! randomized environments, verify the precondition gating (rules refuse
//! where the paper forbids them) and confirm Definition 9 equivalence
//! empirically for every application.
//!
//! ```sh
//! cargo run -p serena-bench --bin table5_rewrites
//! ```

use serena_bench::{report, workload};
use serena_core::equiv::check_over_instants;
use serena_core::formula::Formula;
use serena_core::plan::Plan;
use serena_core::prelude::*;
use serena_core::rewrite::{all_rules, apply_everywhere};

/// The plan family exercised against every rule: σ/π stacked over α, β
/// (passive and active) and ⋈, mirroring Table 5's rows and columns.
fn plan_family() -> Vec<(&'static str, Plan)> {
    vec![
        (
            "σ over α (pushable)",
            Plan::relation("contacts")
                .assign_const("text", "Hi")
                .select(Formula::ne_const("name", "contact0")),
        ),
        (
            "σ over α (blocked: F uses A)",
            Plan::relation("contacts")
                .assign_const("text", "Hi")
                .select(Formula::eq_const("text", "Hi")),
        ),
        (
            "π over α",
            Plan::relation("contacts")
                .assign_const("text", "Hi")
                .project(["name", "text", "messenger"]),
        ),
        (
            "σ over passive β (pushable)",
            Plan::relation("sensors")
                .invoke("getTemperature", "sensor")
                .select(Formula::eq_const("location", "office")),
        ),
        (
            "σ over passive β (blocked: F uses output)",
            Plan::relation("sensors")
                .invoke("getTemperature", "sensor")
                .select(Formula::gt_const("temperature", 20.0)),
        ),
        (
            "σ over ACTIVE β (must never move)",
            Plan::relation("contacts")
                .assign_const("text", "Hi")
                .invoke("sendMessage", "messenger")
                .select(Formula::ne_const("name", "contact0")),
        ),
        (
            "π over passive β",
            Plan::relation("sensors")
                .invoke("getTemperature", "sensor")
                .project(["sensor", "location", "temperature"]),
        ),
        (
            "α over ⋈",
            Plan::relation("contacts")
                .join(Plan::relation("sensors").project(["sensor", "location"]))
                .assign_const("text", "Hi"),
        ),
        (
            "β over ⋈ (passive)",
            Plan::relation("sensors")
                .join(Plan::relation("contacts").project(["name", "address"]))
                .invoke("getTemperature", "sensor"),
        ),
        (
            "σ over ⋈",
            Plan::relation("sensors")
                .join(Plan::relation("contacts").project(["name", "address"]))
                .select(Formula::eq_const("location", "office")),
        ),
    ]
}

fn main() {
    println!(
        "{}",
        report::banner("Table 5 — rewrite rules, empirically verified")
    );
    let env = workload::scaled_environment(8, 5, 4);
    let reg = workload::scaled_registry(8, 5);

    let mut rows = Vec::new();
    let mut total_applications = 0usize;
    let mut total_checks = 0usize;
    for (label, plan) in plan_family() {
        assert!(plan.schema(&env).is_ok(), "{label}: plan must validate");
        for rule in all_rules() {
            let (rewritten, n) = apply_everywhere(&plan, rule.as_ref(), &env);
            if n == 0 {
                continue;
            }
            total_applications += n;
            let verdict = check_over_instants(&plan, &rewritten, &env, &reg, (0..4).map(Instant))
                .expect("evaluates");
            total_checks += 1;
            assert!(
                verdict.equivalent(),
                "{label}: rule {} broke equivalence",
                rule.name()
            );
            rows.push(vec![
                label.to_string(),
                rule.name().to_string(),
                format!("×{n}"),
                "≡ (results + action sets)".to_string(),
            ]);
        }
    }
    println!(
        "{}",
        report::table(&["plan shape", "rule fired", "times", "verdict"], &rows)
    );

    // the negative space: rules that must NOT fire
    println!(
        "{}",
        report::banner("Precondition gating (rules must refuse)")
    );
    let blocked: Vec<(&str, &dyn serena_core::rewrite::rules::RewriteRule, Plan)> = vec![
        (
            "σ cannot cross an ACTIVE β (action set would shrink)",
            &serena_core::rewrite::rules::SelectPastInvoke,
            Plan::relation("contacts")
                .assign_const("text", "Hi")
                .invoke("sendMessage", "messenger")
                .select(Formula::ne_const("name", "contact0")),
        ),
        (
            "σ on a β output cannot cross the β",
            &serena_core::rewrite::rules::SelectPastInvoke,
            Plan::relation("sensors")
                .invoke("getTemperature", "sensor")
                .select(Formula::gt_const("temperature", 20.0)),
        ),
        (
            "σ on the α target cannot cross the α",
            &serena_core::rewrite::rules::SelectPastAssign,
            Plan::relation("contacts")
                .assign_const("text", "Hi")
                .select(Formula::eq_const("text", "Hi")),
        ),
    ];
    let mut gate_rows = Vec::new();
    for (label, rule, plan) in blocked {
        let (rewritten, n) = apply_everywhere(&plan, rule, &env);
        assert_eq!(n, 0, "{label}: the rule must refuse");
        assert_eq!(rewritten, plan);
        gate_rows.push(vec![
            label.to_string(),
            rule.name().to_string(),
            "refused ✓".into(),
        ]);
    }
    println!(
        "{}",
        report::table(&["case", "rule", "outcome"], &gate_rows)
    );

    println!(
        "OK: {total_applications} rule applications across {total_checks} plans, all Definition 9-equivalent; all forbidden rewrites refused."
    );
}
