//! # serena-bench
//!
//! Workload generators and reporting helpers shared by the experiment
//! harnesses (one binary per paper table/figure, see DESIGN.md §5) and the
//! Criterion micro-benchmarks.
//!
//! The paper's own evaluation (§5.2) is qualitative; §7 calls the missing
//! quantitative benchmark out as future work ("we also aim at developing a
//! benchmark for pervasive environments … with objective indicators").
//! [`workload`] is this reproduction's instantiation of that benchmark:
//! scaled pervasive environments with a tunable number of services,
//! tuples, selectivities and churn rates, all deterministic.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::sync::Arc;

use serena_core::env::Environment;
use serena_core::formula::Formula;
use serena_core::plan::Plan;
use serena_core::prototype::examples as protos;
use serena_core::schema::examples as schemas;
use serena_core::service::{FnService, StaticRegistry};
use serena_core::tuple::Tuple;
use serena_core::value::Value;
use serena_core::xrelation::XRelation;

pub mod envgen;
pub mod harness;

/// Deterministic scaled workloads.
pub mod workload {
    use super::*;

    /// Areas used by scaled environments.
    pub const AREAS: [&str; 5] = ["office", "corridor", "roof", "lobby", "lab"];

    /// A sensors X-Relation with `n` rows (service references
    /// `s0…s{n-1}`), locations round-robin over [`AREAS`].
    pub fn sensors_relation(n: usize) -> XRelation {
        XRelation::from_tuples(
            schemas::sensors_schema(),
            (0..n).map(|i| {
                Tuple::new(vec![
                    Value::service(format!("s{i}")),
                    Value::str(AREAS[i % AREAS.len()]),
                ])
            }),
        )
    }

    /// A cameras X-Relation with `n` rows.
    pub fn cameras_relation(n: usize) -> XRelation {
        XRelation::from_tuples(
            schemas::cameras_schema(),
            (0..n).map(|i| {
                Tuple::new(vec![
                    Value::service(format!("c{i}")),
                    Value::str(AREAS[i % AREAS.len()]),
                ])
            }),
        )
    }

    /// A contacts X-Relation with `n` rows (all on the `email` messenger).
    pub fn contacts_relation(n: usize) -> XRelation {
        XRelation::from_tuples(
            schemas::contacts_schema(),
            (0..n).map(|i| {
                Tuple::new(vec![
                    Value::str(format!("contact{i}")),
                    Value::str(format!("contact{i}@example.org")),
                    Value::service("email"),
                ])
            }),
        )
    }

    /// An environment with scaled `sensors`, `cameras` and `contacts`
    /// relations.
    pub fn scaled_environment(sensors: usize, cameras: usize, contacts: usize) -> Environment {
        let mut env = Environment::new();
        env.declare_prototype(protos::send_message())
            .expect("fresh environment accepts prototypes");
        env.declare_prototype(protos::check_photo())
            .expect("fresh environment accepts prototypes");
        env.declare_prototype(protos::take_photo())
            .expect("fresh environment accepts prototypes");
        env.declare_prototype(protos::get_temperature())
            .expect("fresh environment accepts prototypes");
        env.define_relation("sensors", sensors_relation(sensors))
            .expect("sensors relation is schema-valid");
        env.define_relation("cameras", cameras_relation(cameras))
            .expect("cameras relation is schema-valid");
        env.define_relation("contacts", contacts_relation(contacts))
            .expect("contacts relation is schema-valid");
        env
    }

    /// A registry serving every reference the scaled environment mentions:
    /// sensors `s{i}`, cameras `c{i}`, the `email`/`jabber` messengers.
    /// All services are pure functions of (seed, instant, input).
    pub fn scaled_registry(sensors: usize, cameras: usize) -> StaticRegistry {
        let reg = StaticRegistry::new();
        for i in 0..sensors {
            let seed = i as u64;
            reg.register(
                format!("s{i}"),
                Arc::new(FnService::new(
                    vec![protos::get_temperature()],
                    move |_, _, at| {
                        let v = 15.0 + ((seed * 13 + at.ticks() * 7) % 20) as f64;
                        Ok(vec![Tuple::new(vec![Value::Real(v)])])
                    },
                )),
            );
        }
        for i in 0..cameras {
            reg.register(
                format!("c{i}"),
                serena_core::service::fixtures::camera(i as u64),
            );
        }
        reg.register("email", serena_core::service::fixtures::messenger());
        reg.register("jabber", serena_core::service::fixtures::messenger());
        reg
    }

    /// The Q2-family plan over the scaled environment, with the `area`
    /// selection either pushed below `checkPhoto` (`pushed = true`, the
    /// paper's Q2) or left above it (Q2').
    pub fn q2_family(pushed: bool, quality_threshold: i64) -> Plan {
        if pushed {
            Plan::relation("cameras")
                .select(Formula::eq_const("area", "office"))
                .invoke("checkPhoto", "camera")
                .select(Formula::ge_const("quality", quality_threshold))
                .invoke("takePhoto", "camera")
                .project(["photo"])
        } else {
            Plan::relation("cameras")
                .invoke("checkPhoto", "camera")
                .select(
                    Formula::eq_const("area", "office")
                        .and(Formula::ge_const("quality", quality_threshold)),
                )
                .invoke("takePhoto", "camera")
                .project(["photo"])
        }
    }
}

/// Plain-text report tables (aligned columns, Markdown-flavoured).
pub mod report {
    /// Render `rows` under `headers` as an aligned Markdown table.
    pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let mut out = fmt_row(&header_cells);
        out.push('\n');
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// A section banner.
    pub fn banner(title: &str) -> String {
        format!("\n=== {title} ===\n")
    }
}

#[cfg(test)]
mod tests {
    use super::workload::*;
    use super::*;
    use serena_core::exec::ExecContext;
    use serena_core::time::Instant;

    #[test]
    fn scaled_environment_is_runnable() {
        let env = scaled_environment(10, 6, 4);
        let reg = scaled_registry(10, 6);
        let plan = Plan::relation("sensors").invoke("getTemperature", "sensor");
        let out = ExecContext::new(&env, &reg, Instant(1))
            .execute(&plan)
            .unwrap();
        assert_eq!(out.relation.len(), 10);
    }

    #[test]
    fn q2_family_is_equivalent_between_variants() {
        let env = scaled_environment(0, 10, 0);
        let reg = scaled_registry(0, 10);
        let a = ExecContext::new(&env, &reg, Instant(0))
            .execute(&q2_family(true, 5))
            .unwrap();
        let b = ExecContext::new(&env, &reg, Instant(0))
            .execute(&q2_family(false, 5))
            .unwrap();
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.actions, b.actions);
    }

    #[test]
    fn report_table_renders() {
        let t = report::table(
            &["n", "value"],
            &[vec!["1".into(), "a".into()], vec!["20".into(), "bb".into()]],
        );
        assert!(t.contains("| n  | value |"));
        assert!(t.lines().count() == 4);
    }
}
